// Gate-level FSM vs behavioral specification: equivalence by simulation.
#include "core/fsm_netlist.h"

#include <gtest/gtest.h>

#include "sim/probe.h"
#include "stats/rng.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

constexpr double kPeriodPs = 1250.0;

struct Rig {
  sim::Simulator sim;
  StructuralControlFsm fsm{sim, "cntr"};
  double t = 0.0;

  // Applies inputs mid-low-phase, then produces one rising clock edge and
  // lets the netlist settle.
  void cycle(bool en, bool cfg, bool cont, std::uint8_t code = 0) {
    sim.drive(fsm.enable(), Picoseconds{t + 100.0}, sim::from_bool(en));
    sim.drive(fsm.configure(), Picoseconds{t + 100.0}, sim::from_bool(cfg));
    sim.drive(fsm.continuous(), Picoseconds{t + 100.0}, sim::from_bool(cont));
    for (std::size_t b = 0; b < 3; ++b) {
      sim.drive(fsm.ext_code(b), Picoseconds{t + 100.0},
                sim::from_bool((code >> b) & 1u));
    }
    sim.drive(fsm.clk(), Picoseconds{t + kPeriodPs / 2.0}, sim::Logic::L1);
    sim.drive(fsm.clk(), Picoseconds{t + kPeriodPs}, sim::Logic::L0);
    sim.run_until(Picoseconds{t + kPeriodPs});
    t += kPeriodPs;
  }

  Rig() {
    // Park the clock low and let power-on values propagate.
    sim.drive(fsm.clk(), 0.0_ps, sim::Logic::L0);
    sim.drive(fsm.enable(), 0.0_ps, sim::Logic::L0);
    sim.drive(fsm.configure(), 0.0_ps, sim::Logic::L0);
    sim.drive(fsm.continuous(), 0.0_ps, sim::Logic::L0);
    for (std::size_t b = 0; b < 3; ++b) {
      sim.drive(fsm.ext_code(b), 0.0_ps, sim::Logic::L0);
    }
    sim.run_until(Picoseconds{500.0});
    t = 1000.0;
  }
};

TEST(FsmNetlist, PowersUpInIdle) {
  Rig rig;
  EXPECT_EQ(rig.fsm.decoded_state(), FsmState::kIdle);
  EXPECT_EQ(rig.fsm.decoded_code(), DelayCode{0});
}

TEST(FsmNetlist, SynthesisProducedRealGates) {
  Rig rig;
  EXPECT_GT(rig.fsm.synthesized_gates(), 100u);
  EXPECT_LT(rig.fsm.synthesized_gates(), 2000u);
}

TEST(FsmNetlist, WalksOneFullTransaction) {
  Rig rig;
  const FsmState expected[] = {FsmState::kReady, FsmState::kPrepareLow,
                               FsmState::kPrepareHigh, FsmState::kSenseLow,
                               FsmState::kSenseHigh, FsmState::kIdle};
  for (const FsmState s : expected) {
    rig.cycle(true, false, false);
    EXPECT_EQ(rig.fsm.decoded_state(), s);
  }
}

TEST(FsmNetlist, MooreOutputsMatchDecode) {
  Rig rig;
  for (int i = 0; i < 6; ++i) {
    rig.cycle(true, false, false);
    const FsmState s = rig.fsm.decoded_state();
    EXPECT_EQ(rig.fsm.p_level().value(),
              sim::from_bool(s != FsmState::kSenseHigh))
        << to_string(s);
    EXPECT_EQ(rig.fsm.cp_level().value(),
              sim::from_bool(s == FsmState::kPrepareHigh ||
                             s == FsmState::kSenseHigh))
        << to_string(s);
    EXPECT_EQ(rig.fsm.capture_sense().value(),
              sim::from_bool(s == FsmState::kSenseHigh))
        << to_string(s);
  }
}

TEST(FsmNetlist, LoadsExtCodeInInit) {
  Rig rig;
  rig.cycle(true, true, false, 5);   // IDLE → READY
  rig.cycle(true, true, false, 5);   // READY → INIT
  EXPECT_EQ(rig.fsm.decoded_state(), FsmState::kInit);
  rig.cycle(true, false, false, 5);  // INIT → S_PRP0, code latched
  EXPECT_EQ(rig.fsm.decoded_code(), DelayCode{5});
  // The code holds afterwards even with ext_code changing.
  rig.cycle(true, false, false, 2);
  EXPECT_EQ(rig.fsm.decoded_code(), DelayCode{5});
}

TEST(FsmNetlist, ContinuousModeSkipsIdle) {
  Rig rig;
  rig.cycle(true, false, true);  // → READY
  for (int cycle = 0; cycle < 15; ++cycle) {
    rig.cycle(true, false, true);
    EXPECT_NE(rig.fsm.decoded_state(), FsmState::kIdle);
  }
}

// The headline property: random stimulus, cycle-exact agreement with the
// behavioral specification for state, outputs and code register.
class FsmEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsmEquivalence, RandomStimulusTrajectoriesMatch) {
  stats::Xoshiro256 rng(GetParam());
  Rig rig;
  // The netlist powers up with a zeroed code register; match the spec.
  ControlFsm spec{DelayCode{0}};  // starts in RESET
  spec.step(FsmInputs{});         // → IDLE, matching the netlist's power-on

  for (int cycle = 0; cycle < 120; ++cycle) {
    FsmInputs in;
    in.enable = rng.bernoulli(0.7);
    in.configure = rng.bernoulli(0.3);
    in.continuous = rng.bernoulli(0.4);
    in.ext_code = DelayCode{static_cast<std::uint8_t>(rng.uniform_index(8))};

    const FsmOutputs expected = spec.step(in);
    rig.cycle(in.enable, in.configure, in.continuous, in.ext_code.value());

    ASSERT_EQ(rig.fsm.decoded_state(), spec.state()) << "cycle " << cycle;
    EXPECT_EQ(rig.fsm.decoded_code(), spec.active_code()) << "cycle " << cycle;
    EXPECT_EQ(rig.fsm.p_level().value(), sim::from_bool(expected.p_level))
        << "cycle " << cycle;
    EXPECT_EQ(rig.fsm.cp_level().value(), sim::from_bool(expected.cp_level))
        << "cycle " << cycle;
    EXPECT_EQ(rig.fsm.busy().value(), sim::from_bool(expected.busy))
        << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace psnt::core
