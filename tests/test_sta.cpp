#include <gtest/gtest.h>

#include "sta/control_netlist.h"
#include "sta/timing_graph.h"

namespace psnt::sta {
namespace {

using namespace psnt::literals;

TEST(TimingGraph, SimpleChainLongestPath) {
  TimingGraph g;
  const auto a = g.add_node("ff_a/Q");
  const auto b = g.add_node("u1/Y");
  const auto c = g.add_node("ff_b/D");
  g.add_edge(a, b, 40.0_ps);
  g.add_edge(b, c, 0.0_ps);
  g.set_source(a, 100.0_ps);
  g.set_sink(c, 50.0_ps);
  const auto path = g.critical_path();
  EXPECT_DOUBLE_EQ(path.arrival.value(), 190.0);
  ASSERT_EQ(path.nodes.size(), 3u);
  EXPECT_EQ(path.nodes.front(), "ff_a/Q");
  EXPECT_EQ(path.nodes.back(), "ff_b/D");
}

TEST(TimingGraph, PicksTheWorstOfReconvergentPaths) {
  TimingGraph g;
  const auto src = g.add_node("src");
  const auto fast = g.add_node("fast");
  const auto slow1 = g.add_node("slow1");
  const auto slow2 = g.add_node("slow2");
  const auto sink = g.add_node("sink");
  g.add_edge(src, fast, 10.0_ps);
  g.add_edge(fast, sink, 0.0_ps);
  g.add_edge(src, slow1, 30.0_ps);
  g.add_edge(slow1, slow2, 30.0_ps);
  g.add_edge(slow2, sink, 0.0_ps);
  g.set_source(src, 0.0_ps);
  g.set_sink(sink, 0.0_ps);
  const auto path = g.critical_path();
  EXPECT_DOUBLE_EQ(path.arrival.value(), 60.0);
  EXPECT_EQ(path.nodes,
            (std::vector<std::string>{"src", "slow1", "slow2", "sink"}));
}

TEST(TimingGraph, MultipleSourcesAndSinks) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto s1 = g.add_node("s1");
  const auto s2 = g.add_node("s2");
  g.add_edge(a, s1, 20.0_ps);
  g.add_edge(b, s2, 80.0_ps);
  g.set_source(a, 10.0_ps);
  g.set_source(b, 10.0_ps);
  g.set_sink(s1, 5.0_ps);
  g.set_sink(s2, 5.0_ps);
  EXPECT_DOUBLE_EQ(g.critical_path().arrival.value(), 95.0);
}

TEST(TimingGraph, DetectsCycles) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 1.0_ps);
  g.add_edge(b, a, 1.0_ps);
  g.set_source(a, 0.0_ps);
  g.set_sink(b, 0.0_ps);
  EXPECT_THROW((void)g.critical_path(), std::logic_error);
}

TEST(TimingGraph, NoSourceToSinkIsAnError) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.set_source(a, 0.0_ps);
  g.set_sink(b, 0.0_ps);  // disconnected
  EXPECT_THROW((void)g.critical_path(), std::logic_error);
}

TEST(TimingGraph, ArrivalTimesPropagate) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 25.0_ps);
  g.set_source(a, 5.0_ps);
  const auto arrivals = g.arrival_times_ps();
  EXPECT_DOUBLE_EQ(arrivals[a], 5.0);
  EXPECT_DOUBLE_EQ(arrivals[b], 30.0);
}

TEST(TimingGraph, ValidatesIds) {
  TimingGraph g;
  const auto a = g.add_node("a");
  EXPECT_THROW(g.add_edge(a, 99, 1.0_ps), std::logic_error);
  EXPECT_THROW(g.set_source(42, 0.0_ps), std::logic_error);
  EXPECT_THROW((void)g.node_name(9), std::logic_error);
  EXPECT_THROW(g.add_edge(a, a, Picoseconds{-1.0}), std::logic_error);
}

TEST(ControlNetlist, ReproducesThePaperCriticalPath) {
  // "The critical path of the whole control system at 90nm is 1.22ns."
  const auto path = control_critical_path(analog::default_90nm_library());
  EXPECT_NEAR(path.arrival.value(), 1220.0, 25.0);
}

TEST(ControlNetlist, CriticalPathGoesThroughTheEncoder) {
  const auto path = control_critical_path(analog::default_90nm_library());
  bool through_enc = false;
  for (const auto& n : path.nodes) {
    if (n.rfind("enc.", 0) == 0) through_enc = true;
  }
  EXPECT_TRUE(through_enc) << path.to_string();
  // Launches from a sensor output register, captures in a code register.
  EXPECT_EQ(path.nodes.front().rfind("hs.out", 0), 0u);
  EXPECT_EQ(path.nodes.back().rfind("code.d", 0), 0u);
}

TEST(ControlNetlist, HasRealisticSize) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  EXPECT_GT(netlist.gate_count, 60u);
  EXPECT_LT(netlist.gate_count, 400u);
  EXPECT_GT(netlist.register_count, 25u);
  EXPECT_GT(netlist.graph.edge_count(), netlist.gate_count);
}

TEST(ControlNetlist, WireLoadKnobMovesThePath) {
  ControlNetlistOptions light;
  light.wire_cap_per_fanout = Picofarad{0.0};
  light.cross_block_route_cap = Picofarad{0.0};
  ControlNetlistOptions heavy;
  heavy.wire_cap_per_fanout = Picofarad{0.003};
  heavy.cross_block_route_cap = Picofarad{0.08};
  const auto fast =
      control_critical_path(analog::default_90nm_library(), light);
  const auto slow =
      control_critical_path(analog::default_90nm_library(), heavy);
  EXPECT_LT(fast.arrival.value(), slow.arrival.value());
}

TEST(ControlNetlist, FitsAtTypicalCutClocks) {
  // The paper's point: 1.22 ns fits "most of the typical CUTs system clock".
  const auto path = control_critical_path(analog::default_90nm_library());
  EXPECT_LT(path.arrival.value(), 1250.0);  // 800 MHz
}

}  // namespace
}  // namespace psnt::sta
