#include "core/resolution.h"

#include <gtest/gtest.h>

#include "calib/fit.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

struct Rig {
  const calib::CalibratedModel& model = calib::calibrated().model;
  SensorArray array = calib::make_paper_array(model);
  PulseGenerator pg{model.pg_config()};
};

TEST(Resolution, LsbGapsMatchThresholdDifferences) {
  Rig s;
  const auto rep = analyze_resolution(s.array, s.pg, DelayCode{3});
  ASSERT_EQ(rep.lsb_mv.size(), 6u);
  // Paper thresholds: 0.827, 0.896, 0.929, 0.9605, 0.992, 1.021, 1.053.
  EXPECT_NEAR(rep.lsb_mv[0], 69.0, 0.5);
  EXPECT_NEAR(rep.lsb_mv[1], 33.0, 0.5);
  EXPECT_NEAR(rep.lsb_mv[5], 32.0, 0.5);
}

TEST(Resolution, SummaryStatsConsistent) {
  Rig s;
  const auto rep = analyze_resolution(s.array, s.pg, DelayCode{3});
  EXPECT_GE(rep.worst_lsb_mv, rep.mean_lsb_mv);
  EXPECT_LE(rep.best_lsb_mv, rep.mean_lsb_mv);
  double sum = 0.0;
  for (double g : rep.lsb_mv) sum += g;
  EXPECT_NEAR(sum / 1000.0, rep.range.span().value(), 1e-9);
}

TEST(Resolution, SmallerCodeCoarsensTheLsb) {
  // Code 010's window is wider at the same bit count → larger mean LSB.
  Rig s;
  const auto r011 = analyze_resolution(s.array, s.pg, DelayCode{3});
  const auto r010 = analyze_resolution(s.array, s.pg, DelayCode{2});
  EXPECT_GT(r010.mean_lsb_mv, r011.mean_lsb_mv);
}

TEST(Resolution, SkewSensitivityIsNegative) {
  // More skew → more time → thresholds drop.
  Rig s;
  const auto sens = analyze_skew_sensitivity(s.array, s.pg, DelayCode{3});
  EXPECT_LT(sens.mv_per_ps, 0.0);
  EXPECT_GT(std::fabs(sens.mv_per_ps), 1.0);   // meaningful coupling
  EXPECT_LT(std::fabs(sens.mv_per_ps), 20.0);  // but not absurd
}

TEST(Resolution, SkewBudgetIsPositiveAndTight) {
  // The paper's differential-pair routing requirement: the budget for a
  // half-LSB error is a few picoseconds — routing skew genuinely matters.
  Rig s;
  const auto sens = analyze_skew_sensitivity(s.array, s.pg, DelayCode{3});
  EXPECT_GT(sens.half_lsb_budget.value(), 0.5);
  EXPECT_LT(sens.half_lsb_budget.value(), 20.0);
}

TEST(Resolution, BudgetKeepsThresholdShiftWithinHalfLsb) {
  Rig s;
  const auto sens = analyze_skew_sensitivity(s.array, s.pg, DelayCode{3});
  const auto res = analyze_resolution(s.array, s.pg, DelayCode{3});

  PulseGenerator skewed{s.model.pg_config()};
  skewed.set_routing_skew(sens.half_lsb_budget);
  const auto base = s.array.thresholds(s.pg.skew(DelayCode{3}));
  const auto shifted = s.array.thresholds(skewed.skew(DelayCode{3}));
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double shift_mv = std::fabs((shifted[i] - base[i]).value()) * 1000.0;
    EXPECT_LE(shift_mv, res.best_lsb_mv / 2.0 + 0.35) << "bit " << i;
  }
}

TEST(Resolution, RoutingSkewShiftsMeasuredWord) {
  // End-to-end: a routing skew a few LSB-budgets wide changes the reading at
  // a voltage parked mid-bin.
  Rig s;
  const auto sens = analyze_skew_sensitivity(s.array, s.pg, DelayCode{3});
  PulseGenerator skewed{s.model.pg_config()};
  skewed.set_routing_skew(sens.half_lsb_budget * 6.0);
  const Volt v{1.0};
  const auto clean = s.array.measure(v, s.pg.skew(DelayCode{3}));
  const auto dirty = s.array.measure(v, skewed.skew(DelayCode{3}));
  EXPECT_NE(clean.count_ones(), dirty.count_ones());
}

}  // namespace
}  // namespace psnt::core
