#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "grid/spsc_ring.h"

namespace psnt::grid {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r3{3};
  EXPECT_EQ(r3.capacity(), 4u);
  SpscRing<int> r8{8};
  EXPECT_EQ(r8.capacity(), 8u);
  SpscRing<int> r1{1};
  EXPECT_EQ(r1.capacity(), 1u);
  EXPECT_THROW(SpscRing<int>{0}, std::logic_error);
}

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring{4};
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  // Full: push fails and leaves the ring intact.
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO order
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<int> ring{4};
  int out = -1;
  // Drive head/tail far past the capacity so indices wrap many times.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.try_push(int{i}));
    EXPECT_TRUE(ring.try_push(i + 1000000));
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i + 1000000);
  }
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring{2};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, FailedPushLeavesValueUnconsumed) {
  SpscRing<std::unique_ptr<int>> ring{1};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  auto value = std::make_unique<int>(2);
  EXPECT_FALSE(ring.try_push(std::move(value)));
  // The failed push must not have stolen the payload.
  ASSERT_TRUE(value);
  EXPECT_EQ(*value, 2);
}

TEST(SpscRing, ProducerConsumerStress) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring{64};  // small ring to force contention
  std::uint64_t consumer_sum = 0;
  std::uint64_t consumed = 0;

  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t v = 0;
    while (consumed < kCount) {
      if (ring.try_pop(v)) {
        // Order must survive concurrency, not just the multiset of values.
        ASSERT_EQ(v, expected);
        ++expected;
        consumer_sum += v;
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(consumed, kCount);
  EXPECT_EQ(consumer_sum, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace psnt::grid
