#include "core/reconstruction.h"

#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/thermometer.h"
#include "psn/pdn.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

Measurement fake_measurement(double t_ps, double lo, double hi) {
  Measurement m;
  m.timestamp = Picoseconds{t_ps};
  m.word = ThermoWord::of_count(3, 7);
  m.bin.lo = Volt{lo};
  m.bin.hi = Volt{hi};
  return m;
}

TEST(Reconstruction, ZeroOrderHoldResampling) {
  std::vector<Measurement> ms{fake_measurement(0.0, 0.9, 1.0),
                              fake_measurement(100.0, 0.8, 0.9),
                              fake_measurement(200.0, 1.0, 1.1)};
  const auto wave = reconstruct_waveform(ms, 50.0_ps);
  EXPECT_EQ(wave.size(), 5u);
  EXPECT_DOUBLE_EQ(wave.samples()[0], 0.95);
  EXPECT_DOUBLE_EQ(wave.samples()[1], 0.95);   // held
  EXPECT_DOUBLE_EQ(wave.samples()[2], 0.85);   // switched at 100 ps
  EXPECT_DOUBLE_EQ(wave.samples()[4], 1.05);
}

TEST(Reconstruction, Validation) {
  std::vector<Measurement> one{fake_measurement(0.0, 0.9, 1.0)};
  EXPECT_THROW((void)reconstruct_waveform(one, 10.0_ps), std::logic_error);
  std::vector<Measurement> bad{fake_measurement(100.0, 0.9, 1.0),
                               fake_measurement(50.0, 0.9, 1.0)};
  EXPECT_THROW((void)reconstruct_waveform(bad, 10.0_ps), std::logic_error);
  std::vector<Measurement> ok{fake_measurement(0.0, 0.9, 1.0),
                              fake_measurement(100.0, 0.9, 1.0)};
  EXPECT_THROW((void)reconstruct_waveform(ok, 0.0_ps), std::logic_error);
  EXPECT_THROW((void)reconstruction_error({}, psn::Waveform::constant(
                                                  0.0_ps, 1.0_ps, 2, 1.0)),
               std::logic_error);
}

TEST(Reconstruction, ErrorStatsAgainstKnownTruth) {
  const auto truth = psn::Waveform::constant(0.0_ps, 10.0_ps, 100, 0.95);
  // Bin [0.94, 0.98): estimate 0.96 → error 10 mV, bracketed.
  std::vector<Measurement> ms{fake_measurement(100.0, 0.94, 0.98),
                              fake_measurement(300.0, 0.94, 0.98)};
  const auto err = reconstruction_error(ms, truth);
  EXPECT_NEAR(err.mean_abs_mv, 10.0, 1e-9);
  EXPECT_NEAR(err.max_abs_mv, 10.0, 1e-9);
  EXPECT_NEAR(err.rms_mv, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(err.bracket_rate, 1.0);
}

TEST(Reconstruction, DetectsNonBracketingBins) {
  const auto truth = psn::Waveform::constant(0.0_ps, 10.0_ps, 100, 0.95);
  std::vector<Measurement> ms{fake_measurement(100.0, 0.96, 0.99),  // misses
                              fake_measurement(300.0, 0.94, 0.98)};
  const auto err = reconstruction_error(ms, truth);
  EXPECT_DOUBLE_EQ(err.bracket_rate, 0.5);
}

TEST(Reconstruction, EndToEndDroopCapture) {
  // The formalised version of the psn_waveform_capture example: the
  // reconstruction error is bounded by quantisation (half worst LSB) plus
  // the sampling aliasing between measures.
  psn::LumpedPdnParams p;
  p.v_reg = 1.0_V;
  p.resistance = Ohm{0.004};
  p.inductance = NanoHenry{0.08};
  p.decap = Picofarad{120000.0};
  psn::LumpedPdn pdn{p};
  psn::StepCurrent load{Ampere{1.0}, Ampere{3.5}, 50000.0_ps};
  const psn::Waveform truth = pdn.solve(load, 350000.0_ps, 10.0_ps);
  const analog::SampledRail rail = truth.to_rail();

  auto thermometer = calib::make_paper_thermometer(calib::calibrated().model);
  const auto ms = thermometer.iterate_vdd(analog::RailPair{&rail, nullptr},
                                          0.0_ps, 5000.0_ps, 65,
                                          DelayCode{3});
  const auto err = reconstruction_error(ms, truth);
  EXPECT_DOUBLE_EQ(err.bracket_rate, 1.0);
  EXPECT_LT(err.max_abs_mv, 40.0);  // worst LSB of the paper ladder is 69 mV
  EXPECT_LT(err.rms_mv, 20.0);

  const auto wave = reconstruct_waveform(ms, 1000.0_ps);
  EXPECT_GT(wave.size(), 300u);
  // The reconstruction sees the droop (min well below nominal).
  EXPECT_LT(wave.min(), 0.97);
}

}  // namespace
}  // namespace psnt::core
