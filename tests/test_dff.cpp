#include "sim/dff.h"

#include <gtest/gtest.h>

#include "sim/probe.h"

namespace psnt::sim {
namespace {

using namespace psnt::literals;

struct Fixture {
  Simulator sim;
  Net& d;
  Net& cp;
  Net& q;
  DFlipFlop& ff;

  Fixture()
      : d(sim.net("d")),
        cp(sim.net("cp")),
        q(sim.net("q")),
        ff(sim.add<DFlipFlop>("ff", d, cp, q,
                              analog::FlipFlopTimingModel{})) {}
};

TEST(Dff, CleanCaptureOfStableData) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 500.0_ps, Logic::L1);
  f.sim.run_all();
  EXPECT_EQ(f.q.value(), Logic::L1);
  ASSERT_EQ(f.ff.history().size(), 1u);
  EXPECT_EQ(f.ff.history()[0].outcome.region, analog::SampleRegion::kClean);
  EXPECT_EQ(f.ff.setup_violations(), 0u);
}

TEST(Dff, QAppearsAfterClkToQ) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 500.0_ps, Logic::L1);
  TransitionRecorder rec(f.q);
  f.sim.run_all();
  ASSERT_TRUE(rec.last_rise().has_value());
  EXPECT_DOUBLE_EQ(rec.last_rise()->value(),
                   500.0 + f.ff.model().params().t_clk_to_q.value());
}

TEST(Dff, LateDataViolatesSetupAndKeepsOldValue) {
  Fixture f;
  // Load a 0 first.
  f.sim.drive(f.d, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 300.0_ps, Logic::L1);
  f.sim.drive(f.cp, 600.0_ps, Logic::L0);
  // D flips 10 ps before the second edge: within the 35 ps setup window.
  f.sim.drive(f.d, 890.0_ps, Logic::L1);
  f.sim.drive(f.cp, 900.0_ps, Logic::L1);
  f.sim.run_all();
  EXPECT_EQ(f.q.value(), Logic::L0);  // old value retained
  EXPECT_EQ(f.ff.setup_violations(), 1u);
  ASSERT_EQ(f.ff.history().size(), 2u);
  EXPECT_EQ(f.ff.history()[1].outcome.region,
            analog::SampleRegion::kViolated);
}

TEST(Dff, MetastableMarginSlowsClkToQ) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  // Margin = 900 - 35 - 860 = 5 ps: metastable but captured.
  f.sim.drive(f.d, 860.0_ps, Logic::L1);
  f.sim.drive(f.cp, 900.0_ps, Logic::L1);
  TransitionRecorder rec(f.q);
  f.sim.run_all();
  EXPECT_EQ(f.q.value(), Logic::L1);
  EXPECT_EQ(f.ff.metastable_samples(), 1u);
  ASSERT_TRUE(rec.last_rise().has_value());
  EXPECT_GT(rec.last_rise()->value(),
            900.0 + f.ff.model().params().t_clk_to_q.value());
}

TEST(Dff, IgnoresFallingEdges) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L1);  // X→1 is not 0→1
  f.sim.drive(f.cp, 100.0_ps, Logic::L0);
  f.sim.run_all();
  EXPECT_TRUE(f.ff.history().empty());
  EXPECT_EQ(f.q.value(), Logic::X);
}

TEST(Dff, XDataPropagatesXToQ) {
  Fixture f;
  // D never driven: stays X.
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 200.0_ps, Logic::L1);
  f.sim.run_all();
  EXPECT_EQ(f.q.value(), Logic::X);
  ASSERT_EQ(f.ff.history().size(), 1u);
}

TEST(Dff, HoldViolationDetected) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 500.0_ps, Logic::L1);
  // D moves 3 ps after the edge: inside the 10 ps hold window.
  f.sim.drive(f.d, 503.0_ps, Logic::L0);
  f.sim.run_all();
  EXPECT_EQ(f.ff.hold_violations(), 1u);
  EXPECT_EQ(f.q.value(), Logic::X);
  ASSERT_EQ(f.ff.history().size(), 1u);
  EXPECT_TRUE(f.ff.history()[0].hold_violation);
}

TEST(Dff, DataChangeWellAfterEdgeIsNoViolation) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 500.0_ps, Logic::L1);
  f.sim.drive(f.d, 600.0_ps, Logic::L0);
  f.sim.run_all();
  EXPECT_EQ(f.ff.hold_violations(), 0u);
  EXPECT_EQ(f.q.value(), Logic::L1);
}

TEST(Dff, HistoryClearWorks) {
  Fixture f;
  f.sim.drive(f.d, 0.0_ps, Logic::L1);
  f.sim.drive(f.cp, 0.0_ps, Logic::L0);
  f.sim.drive(f.cp, 500.0_ps, Logic::L1);
  f.sim.run_all();
  EXPECT_EQ(f.ff.history().size(), 1u);
  f.ff.clear_history();
  EXPECT_TRUE(f.ff.history().empty());
}

}  // namespace
}  // namespace psnt::sim
