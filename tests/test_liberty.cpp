#include "analog/liberty_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psnt::analog {
namespace {

std::string default_lib_text() {
  return liberty_string(default_90nm_library());
}

TEST(Liberty, HeaderDeclaresUnitsAndConditions) {
  const std::string lib = default_lib_text();
  EXPECT_NE(lib.find("library (psnt90_tt_1p00v_25c)"), std::string::npos);
  EXPECT_NE(lib.find("delay_model : table_lookup;"), std::string::npos);
  EXPECT_NE(lib.find("time_unit : \"1ps\";"), std::string::npos);
  EXPECT_NE(lib.find("capacitive_load_unit (1, pf);"), std::string::npos);
  EXPECT_NE(lib.find("nom_voltage : 1"), std::string::npos);
}

TEST(Liberty, EveryCellEmitted) {
  const std::string lib = default_lib_text();
  for (const auto& name : default_90nm_library().cell_names()) {
    EXPECT_NE(lib.find("cell (" + name + ")"), std::string::npos) << name;
  }
}

TEST(Liberty, CombinationalArcsCarryUnatenessAndTables) {
  const std::string lib = default_lib_text();
  EXPECT_NE(lib.find("timing_sense : negative_unate"), std::string::npos);
  EXPECT_NE(lib.find("timing_sense : positive_unate"), std::string::npos);
  EXPECT_NE(lib.find("cell_rise ("), std::string::npos);
  EXPECT_NE(lib.find("rise_transition ("), std::string::npos);
  EXPECT_NE(lib.find("index_1(\""), std::string::npos);
  EXPECT_NE(lib.find("index_2(\""), std::string::npos);
}

TEST(Liberty, SequentialCellCarriesConstraints) {
  const std::string lib = default_lib_text();
  EXPECT_NE(lib.find("ff (IQ, IQN)"), std::string::npos);
  EXPECT_NE(lib.find("timing_type : setup_rising"), std::string::npos);
  EXPECT_NE(lib.find("timing_type : hold_rising"), std::string::npos);
  EXPECT_NE(lib.find("timing_type : rising_edge"), std::string::npos);
  // The DFF setup value (55 ps) appears in its constraint table.
  EXPECT_NE(lib.find("values(\"55\")"), std::string::npos);
}

TEST(Liberty, TableValuesMatchLookups) {
  // Spot-check: the INV_X1 delay at its first grid point appears verbatim.
  const auto& lib = default_90nm_library();
  const Cell& inv = lib.at("INV_X1");
  const auto& table = inv.arcs[0].delay;
  const double v00 = table
                         .lookup(Picoseconds{table.slew_axis()[0]},
                                 Picofarad{table.load_axis()[0]})
                         .value();
  std::ostringstream expect;
  expect << v00;
  EXPECT_NE(default_lib_text().find(expect.str()), std::string::npos);
}

TEST(Liberty, BalancedBraces) {
  const std::string lib = default_lib_text();
  long depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Liberty, CustomOptions) {
  LibertyOptions options;
  options.library_name = "custom_lib";
  options.voltage = 0.9;
  options.temperature = 125.0;
  const std::string lib =
      liberty_string(default_90nm_library(), options);
  EXPECT_NE(lib.find("library (custom_lib)"), std::string::npos);
  EXPECT_NE(lib.find("nom_voltage : 0.9"), std::string::npos);
  EXPECT_NE(lib.find("nom_temperature : 125"), std::string::npos);
}

TEST(Liberty, RejectsEmptyLibrary) {
  CellLibrary empty;
  std::ostringstream os;
  EXPECT_THROW(write_liberty(os, empty), std::logic_error);
}

}  // namespace
}  // namespace psnt::analog
