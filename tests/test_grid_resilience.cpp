// Grid-level fault-injection & graceful-degradation tests: determinism of
// the chaos path across thread counts, bit-identity of the disabled path
// against the serial scan-chain reference, and the retry / vote / quarantine
// policy outcomes under seeded storms and scheduled faults.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "calib/fit.h"
#include "grid/scan_grid.h"
#include "scan/scan_chain.h"

namespace psnt::grid {
namespace {

using namespace psnt::literals;

ScanGridConfig base_config(std::size_t threads) {
  ScanGridConfig config;
  config.threads = threads;
  config.samples_per_site = 8;
  config.start = Picoseconds{0.0};
  config.interval = Picoseconds{10000.0};
  config.code = core::DelayCode{3};
  config.seed = 7;
  return config;
}

RailFactory test_rails(const scan::Floorplan& fp) {
  return ScanGrid::ir_gradient_rails(fp, Volt{1.01}, 0.05 / 5657.0,
                                     {0.0, 0.0}, /*sigma_volts=*/0.004);
}

std::shared_ptr<fault::FaultInjector> storm_injector(std::uint64_t seed) {
  fault::FaultStormConfig storm;
  storm.p_stuck_site = 0.15;
  storm.p_metastable = 0.1;
  storm.p_code_drift = 0.08;
  storm.p_rail_droop = 0.08;
  storm.p_dead_site = 0.12;
  storm.p_hung = 0.2;
  storm.p_ring_storm = 0.05;
  storm.droop_depth = Volt{0.05};
  storm.dead_onset_horizon = 6;
  storm.ring_storm_pushes = 3;
  return std::make_shared<fault::FaultInjector>(seed, storm);
}

ResiliencePolicy full_policy() {
  ResiliencePolicy policy;
  policy.max_retries = 6;
  policy.votes = 3;
  policy.quarantine_after = 2;
  policy.backoff_base_us = 0;  // keep tests fast; accounting still exercised
  return policy;
}

// With a non-default resilience policy but NO injector, the grid runs the
// chaos measure path — and must still produce words bit-identical to the
// serial scan-chain broadcast reference. This is the "injector disabled ⇒
// bit-identical" acceptance gate, asserted against an independent serial
// reconstruction rather than another grid run.
TEST(GridResilience, ChaosPathWithoutInjectorMatchesSerialReference) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  auto config = base_config(4);
  config.resilience = full_policy();  // chaos path on, zero faults
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();

  EXPECT_EQ(result.faults_injected, 0u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.vote_overrides, 0u);
  EXPECT_EQ(result.quarantined_sites, 0u);

  const auto& model = calib::calibrated().model;
  const auto factory = test_rails(fp);
  scan::PsnScanChain chain{fp, config.thermometer};
  std::vector<std::unique_ptr<analog::RailSource>> rails;
  for (const auto& site : fp.sites()) {
    auto rng = ScanGrid::site_rng(config.seed, site.id);
    rails.push_back(factory(site, rng));
    chain.attach_site(site.id, analog::RailPair{rails.back().get(), nullptr},
                      calib::make_paper_thermometer(model, config.thermometer));
  }
  for (std::size_t k = 0; k < config.samples_per_site; ++k) {
    const auto snapshot =
        chain.broadcast_measure(grid.sample_time(k), config.code);
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      ASSERT_TRUE(result.sites[i].valid[k]);
      EXPECT_EQ(result.sites[i].samples[k].word, snapshot[i].measurement.word)
          << "site " << i << " sample " << k
          << ": resilience machinery altered a fault-free word";
      EXPECT_TRUE(result.sites[i].fault_events.empty());
    }
  }
}

// Same seed + same schedule ⇒ identical fault traces AND identical words at
// 1, 2 and 8 grid threads. The storm exercises every fault lane.
TEST(GridResilience, SeededStormIsDeterministicAcrossThreadCounts) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  auto make_config = [](std::size_t threads) {
    auto config = base_config(threads);
    auto injector = storm_injector(99);
    injector->schedule({.site_id = 5,
                        .first_sample = 2,
                        .last_sample = 4,
                        .kind = fault::FaultKind::kRailDroop,
                        .droop_volts = Volt{0.03}});
    config.injector = injector;
    config.resilience = full_policy();
    return config;
  };

  ScanGrid g1{fp, make_config(1), test_rails(fp)};
  ScanGrid g2{fp, make_config(2), test_rails(fp)};
  ScanGrid g8{fp, make_config(8), test_rails(fp)};
  const auto r1 = g1.run();
  const auto r2 = g2.run();
  const auto r8 = g8.run();

  EXPECT_GT(r1.faults_injected, 0u);
  for (const auto* r : {&r2, &r8}) {
    EXPECT_EQ(r1.faults_injected, r->faults_injected);
    EXPECT_EQ(r1.retries, r->retries);
    EXPECT_EQ(r1.recovered, r->recovered);
    EXPECT_EQ(r1.lost, r->lost);
    EXPECT_EQ(r1.vote_overrides, r->vote_overrides);
    EXPECT_EQ(r1.quarantined_sites, r->quarantined_sites);
    ASSERT_EQ(r1.sites.size(), r->sites.size());
    for (std::size_t i = 0; i < r1.sites.size(); ++i) {
      const auto& a = r1.sites[i];
      const auto& b = r->sites[i];
      EXPECT_EQ(a.fault_events, b.fault_events) << "site " << i;
      EXPECT_EQ(a.quarantined, b.quarantined);
      EXPECT_EQ(a.quarantine_sample, b.quarantine_sample);
      EXPECT_EQ(a.retries, b.retries);
      EXPECT_EQ(a.lost, b.lost);
      ASSERT_EQ(a.valid, b.valid) << "site " << i;
      for (std::size_t k = 0; k < a.samples.size(); ++k) {
        if (!a.valid[k]) continue;
        EXPECT_EQ(a.samples[k].word, b.samples[k].word)
            << "site " << i << " sample " << k;
        EXPECT_EQ(a.samples[k].code, b.samples[k].code);
      }
    }
  }
}

// A scheduled dead site converges to quarantine; every healthy site's words
// are bit-identical to a fault-free run of the same grid.
TEST(GridResilience, ScheduledDeadSiteIsQuarantinedOthersUnaffected) {
  const auto fp = scan::Floorplan::grid(3000.0, 3000.0, 3, 3);
  const std::uint32_t victim = fp.sites()[4].id;

  auto chaos_config = base_config(3);
  auto injector = std::make_shared<fault::FaultInjector>(1);  // schedule only
  injector->schedule({.site_id = victim,
                      .first_sample = 0,
                      .kind = fault::FaultKind::kDeadSite});
  chaos_config.injector = injector;
  chaos_config.resilience.max_retries = 1;
  chaos_config.resilience.quarantine_after = 2;
  ScanGrid chaos{fp, chaos_config, test_rails(fp)};
  const auto degraded = chaos.run();

  ScanGrid clean{fp, base_config(3), test_rails(fp)};
  const auto reference = clean.run();

  ASSERT_EQ(degraded.sites.size(), 9u);
  EXPECT_EQ(degraded.quarantined_sites, 1u);
  for (std::size_t i = 0; i < degraded.sites.size(); ++i) {
    const auto& site = degraded.sites[i];
    if (site.site_id == victim) {
      EXPECT_TRUE(site.quarantined);
      // Two losses trip quarantine_after=2; the rest are skipped as lost.
      EXPECT_EQ(site.quarantine_sample, 2u);
      EXPECT_EQ(site.lost, chaos_config.samples_per_site);
      // Each of the first two samples burned one retry before failing.
      EXPECT_EQ(site.retries, 2u);
      for (bool v : site.valid) EXPECT_FALSE(v);
      ASSERT_FALSE(site.fault_events.empty());
      for (const auto& e : site.fault_events) {
        EXPECT_EQ(e.kind, fault::FaultKind::kDeadSite);
      }
    } else {
      EXPECT_FALSE(site.quarantined);
      EXPECT_EQ(site.lost, 0u);
      for (std::size_t k = 0; k < site.samples.size(); ++k) {
        EXPECT_EQ(site.samples[k].word, reference.sites[i].samples[k].word)
            << "healthy site " << i << " perturbed by a fault on site "
            << victim;
      }
    }
  }
  EXPECT_EQ(chaos.telemetry().counter("grid.sites_quarantined").value(), 1u);
  EXPECT_EQ(chaos.telemetry().counter("grid.samples_lost").value(),
            degraded.lost);
}

// Transient hangs re-roll per attempt: with enough retries every sample is
// eventually delivered — zero losses, recoveries and timeouts accounted.
TEST(GridResilience, RetryRecoversHungMeasures) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto config = base_config(2);
  fault::FaultStormConfig storm;
  storm.p_hung = 0.25;
  config.injector = std::make_shared<fault::FaultInjector>(21, storm);
  config.resilience.max_retries = 8;
  config.resilience.backoff_base_us = 1;  // exercise the sleep path too
  config.resilience.backoff_cap_us = 4;
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();

  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.produced, 4u * config.samples_per_site);
  EXPECT_GT(result.retries, 0u);
  EXPECT_GT(result.recovered, 0u);
  EXPECT_EQ(result.quarantined_sites, 0u);
  EXPECT_GT(grid.telemetry().counter("grid.measure_timeouts").value(), 0u);
  EXPECT_EQ(grid.telemetry().counter("grid.retries").value(), result.retries);
  EXPECT_GT(grid.telemetry().counter("grid.backoff_us").value(), 0u);
  EXPECT_GT(grid.telemetry().counter("grid.fault.hung_site").value(), 0u);
}

// A lone metastable flip is outvoted 2:1: every published word matches the
// fault-free reference even though flips demonstrably struck.
TEST(GridResilience, MajorityVoteOutvotesMetastableFlips) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto config = base_config(2);
  config.samples_per_site = 10;
  fault::FaultStormConfig storm;
  storm.p_metastable = 0.1;
  config.injector = std::make_shared<fault::FaultInjector>(5, storm);
  config.resilience.votes = 3;
  ScanGrid voting{fp, config, test_rails(fp)};
  const auto voted = voting.run();

  auto clean_config = base_config(2);
  clean_config.samples_per_site = 10;
  ScanGrid clean{fp, clean_config, test_rails(fp)};
  const auto reference = clean.run();

  EXPECT_GT(voted.faults_injected, 0u);
  EXPECT_GT(voted.vote_overrides, 0u);
  EXPECT_EQ(voted.lost, 0u);
  for (std::size_t i = 0; i < voted.sites.size(); ++i) {
    for (std::size_t k = 0; k < 10u; ++k) {
      EXPECT_EQ(voted.sites[i].samples[k].word,
                reference.sites[i].samples[k].word)
          << "site " << i << " sample " << k
          << ": a transient flip leaked past the majority vote";
    }
  }
}

// A stuck DS node is persistent: every vote sees it, so voting must NOT mask
// it — the corruption stays visible in the published words and the trace.
TEST(GridResilience, StuckBitSurvivesVotingAndIsTraced) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  const std::uint32_t victim = fp.sites()[0].id;
  auto config = base_config(1);
  auto injector = std::make_shared<fault::FaultInjector>(1);
  injector->schedule({.site_id = victim,
                      .first_sample = 0,
                      .kind = fault::FaultKind::kStuckDsNode,
                      .detail = 0,           // bit 0 is 1 on a healthy word
                      .stuck_value = false});
  config.injector = injector;
  config.resilience.votes = 3;
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  const auto result = grid.run();

  ScanGrid clean{fp, base_config(1), ScanGrid::constant_rails(1.0_V)};
  const auto reference = clean.run();
  ASSERT_TRUE(reference.sites[0].samples[0].word.bit(0))
      << "test premise: a healthy word at nominal VDD has bit 0 set";

  const auto& site = result.sites[0];
  EXPECT_EQ(site.vote_overrides, 0u) << "all votes agree on a stuck bit";
  std::size_t stuck_events = 0;
  for (const auto& e : site.fault_events) {
    stuck_events += e.kind == fault::FaultKind::kStuckDsNode ? 1 : 0;
  }
  // One event per vote attempt: 3 votes x 8 samples.
  EXPECT_EQ(stuck_events, 3u * config.samples_per_site);
  for (std::size_t k = 0; k < config.samples_per_site; ++k) {
    EXPECT_FALSE(site.samples[k].word.bit(0));
    EXPECT_NE(site.samples[k].word, reference.sites[0].samples[k].word);
  }
  // The untouched neighbor is bit-identical to the reference.
  for (std::size_t k = 0; k < config.samples_per_site; ++k) {
    EXPECT_EQ(result.sites[1].samples[k].word,
              reference.sites[1].samples[k].word);
  }
}

// A ring-overflow storm forces full-ring pushes: under kBlockProducer the
// producer stalls (counted) but no sample is lost or corrupted.
TEST(GridResilience, RingOverflowStormIsLosslessUnderBlockPolicy) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(2);
  auto injector = std::make_shared<fault::FaultInjector>(1);
  for (const auto& site : fp.sites()) {
    injector->schedule({.site_id = site.id,
                        .first_sample = 0,
                        .kind = fault::FaultKind::kRingOverflow,
                        .detail = 4});
  }
  config.injector = injector;
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  const auto result = grid.run();

  ScanGrid clean{fp, base_config(2), ScanGrid::constant_rails(1.0_V)};
  const auto reference = clean.run();

  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(result.lost, 0u);
  // 4 forced stalls per sample per site.
  EXPECT_GE(result.ring_stalls, 4u * 2u * config.samples_per_site);
  for (std::size_t i = 0; i < result.sites.size(); ++i) {
    for (std::size_t k = 0; k < config.samples_per_site; ++k) {
      EXPECT_TRUE(result.sites[i].valid[k]);
      EXPECT_EQ(result.sites[i].samples[k].word,
                reference.sites[i].samples[k].word);
    }
  }
  EXPECT_GT(grid.telemetry().counter("grid.fault.ring_overflow").value(), 0u);
}

// Code drift slips the trimmed Delay Code for one sample; the drifted code
// is recorded in the measurement and the event lands in the trace.
TEST(GridResilience, CodeDriftIsAppliedAndRecorded) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  const std::uint32_t victim = fp.sites()[1].id;
  auto config = base_config(1);
  auto injector = std::make_shared<fault::FaultInjector>(1);
  injector->schedule({.site_id = victim,
                      .first_sample = 2,
                      .last_sample = 3,
                      .kind = fault::FaultKind::kCodeDrift,
                      .detail = 1});
  config.injector = injector;
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  const auto result = grid.run();

  const auto& site = result.sites[1];
  for (std::size_t k = 0; k < config.samples_per_site; ++k) {
    const bool drifted = k == 2 || k == 3;
    EXPECT_EQ(site.samples[k].code,
              drifted ? core::DelayCode{4} : config.code)
        << "sample " << k;
  }
  ASSERT_EQ(site.fault_events.size(), 2u);
  EXPECT_EQ(site.fault_events[0].kind, fault::FaultKind::kCodeDrift);
  EXPECT_EQ(site.fault_events[0].sample, 2u);
  EXPECT_EQ(site.fault_events[1].sample, 3u);
  EXPECT_EQ(result.sites[0].fault_events.size(), 0u);
}

// A droop spike sags the site rail for exactly its scheduled window: the
// word moves (fewer ones at lower VDD) and snaps back after the window.
TEST(GridResilience, RailDroopSpikeSagsTheWordThenRecovers) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  const std::uint32_t victim = fp.sites()[0].id;
  auto config = base_config(1);
  auto injector = std::make_shared<fault::FaultInjector>(1);
  injector->schedule({.site_id = victim,
                      .first_sample = 3,
                      .last_sample = 3,
                      .kind = fault::FaultKind::kRailDroop,
                      .droop_volts = Volt{0.08}});
  config.injector = injector;
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  const auto result = grid.run();

  const auto& site = result.sites[0];
  const auto clean_word = site.samples[0].word;
  EXPECT_LT(site.samples[3].word.count_ones(), clean_word.count_ones())
      << "an 80 mV sag must slow the DS inverter visibly";
  for (std::size_t k = 0; k < config.samples_per_site; ++k) {
    if (k == 3) continue;
    EXPECT_EQ(site.samples[k].word, clean_word) << "sample " << k;
  }
  ASSERT_EQ(site.fault_events.size(), 1u);
  EXPECT_EQ(site.fault_events[0].kind, fault::FaultKind::kRailDroop);
  EXPECT_EQ(site.fault_events[0].detail, -80);  // millivolts
}

// Gate-level chaos: a dead structural site quarantines, its stuck neighbor
// keeps publishing corrupted words, and the whole thing is thread-invariant.
TEST(GridResilience, StructuralChaosQuarantinesAndStaysDeterministic) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto make_config = [&](std::size_t threads) {
    auto config = base_config(threads);
    config.fidelity = SiteFidelity::kStructural;
    config.samples_per_site = 3;
    auto injector = std::make_shared<fault::FaultInjector>(3);
    injector->schedule({.site_id = fp.sites()[0].id,
                        .first_sample = 1,
                        .kind = fault::FaultKind::kDeadSite});
    injector->schedule({.site_id = fp.sites()[1].id,
                        .first_sample = 0,
                        .kind = fault::FaultKind::kStuckDsNode,
                        .detail = 0,
                        .stuck_value = false});
    config.injector = injector;
    config.resilience.quarantine_after = 1;
    return config;
  };

  ScanGrid serial{fp, make_config(1), ScanGrid::constant_rails(1.0_V)};
  ScanGrid parallel{fp, make_config(2), ScanGrid::constant_rails(1.0_V)};
  const auto a = serial.run();
  const auto b = parallel.run();

  EXPECT_TRUE(a.sites[0].valid[0]) << "site dies at sample 1, not 0";
  EXPECT_TRUE(a.sites[0].quarantined);
  EXPECT_EQ(a.sites[0].quarantine_sample, 2u);
  EXPECT_EQ(a.sites[0].lost, 2u);
  for (std::size_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(a.sites[1].valid[k]);
    EXPECT_FALSE(a.sites[1].samples[k].word.bit(0));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.sites[i].fault_events, b.sites[i].fault_events);
    EXPECT_EQ(a.sites[i].quarantined, b.sites[i].quarantined);
    ASSERT_EQ(a.sites[i].valid, b.sites[i].valid);
    for (std::size_t k = 0; k < 3; ++k) {
      if (!a.sites[i].valid[k]) continue;
      EXPECT_EQ(a.sites[i].samples[k].word, b.sites[i].samples[k].word)
          << "structural site " << i << " sample " << k;
    }
  }
}

// The chaos-soak acceptance gate: under the reference storm with the full
// policy, every loss is attributable to a quarantined (dead) site — healthy
// sites recover 100% of their samples, so the delivered fraction is bounded
// below by the surviving-site share (documented in DESIGN.md §10).
TEST(GridResilience, StormLossesAreConfinedToQuarantinedSites) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  auto config = base_config(4);
  config.injector = storm_injector(99);
  config.resilience = full_policy();
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();

  EXPECT_GT(result.quarantined_sites, 0u);
  EXPECT_GT(result.recovered, 0u);
  std::uint64_t quarantined_losses = 0;
  for (const auto& site : result.sites) {
    if (site.quarantined) {
      quarantined_losses += site.lost;
    } else {
      EXPECT_EQ(site.lost, 0u)
          << "site " << site.site_id
          << " lost samples without being quarantined: retry/vote failed";
    }
  }
  EXPECT_EQ(result.lost, quarantined_losses);
  const double delivered =
      static_cast<double>(result.produced) /
      static_cast<double>(16u * config.samples_per_site);
  // 16 sites, p_dead_site = 0.12: the storm kills ~2 sites; ≥ 60% delivery
  // is the documented floor for this reference storm.
  EXPECT_GE(delivered, 0.6);
  EXPECT_EQ(result.produced + result.lost + result.dropped,
            16u * config.samples_per_site);
}

TEST(GridResilience, RejectsInvalidResilienceConfigurations) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto even_votes = base_config(1);
  even_votes.resilience.votes = 2;
  EXPECT_THROW((ScanGrid{fp, even_votes, ScanGrid::constant_rails(1.0_V)}),
               std::logic_error);

  auto structural_votes = base_config(1);
  structural_votes.fidelity = SiteFidelity::kStructural;
  structural_votes.resilience.votes = 3;
  EXPECT_THROW(
      (ScanGrid{fp, structural_votes, ScanGrid::constant_rails(1.0_V)}),
      std::logic_error);
}

}  // namespace
}  // namespace psnt::grid
