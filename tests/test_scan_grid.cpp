#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "calib/fit.h"
#include "grid/scan_grid.h"
#include "scan/scan_chain.h"

namespace psnt::grid {
namespace {

using namespace psnt::literals;

ScanGridConfig base_config(std::size_t threads) {
  ScanGridConfig config;
  config.threads = threads;
  config.samples_per_site = 6;
  config.start = Picoseconds{0.0};
  config.interval = Picoseconds{10000.0};
  config.code = core::DelayCode{3};
  config.seed = 7;
  return config;
}

// The per-site IR gradient + per-site random offset every test below shares.
RailFactory test_rails(const scan::Floorplan& fp) {
  return ScanGrid::ir_gradient_rails(fp, Volt{1.01}, 0.05 / 5657.0,
                                     {0.0, 0.0}, /*sigma_volts=*/0.004);
}

TEST(ScanGrid, RunProducesEverySampleOfEverySite) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  ScanGrid grid{fp, base_config(4), test_rails(fp)};
  const auto result = grid.run();

  ASSERT_EQ(result.sites.size(), 16u);
  EXPECT_EQ(result.produced, 16u * 6u);
  EXPECT_EQ(result.dropped, 0u);
  for (const auto& site : result.sites) {
    ASSERT_EQ(site.samples.size(), 6u);
    for (std::size_t k = 0; k < 6; ++k) {
      EXPECT_TRUE(site.valid[k]);
      EXPECT_EQ(site.samples[k].word.width(), 7u);
      // The recorded timestamp is the SENSE sampling edge, a few control
      // cycles after the transaction launch at sample_time(k).
      EXPECT_GE(site.samples[k].timestamp, grid.sample_time(k));
    }
  }
  // Telemetry agrees with the result matrix.
  EXPECT_EQ(grid.telemetry().counter("grid.samples_drained").value(),
            16u * 6u);
  auto& latency =
      grid.telemetry().histogram("grid.measure_latency_us", 0.0, 500.0, 50);
  EXPECT_EQ(latency.stats().count(), 16u * 6u);
  const auto& rollup = grid.telemetry().site_rollup("site_word_ones", 16);
  EXPECT_EQ(rollup.merged().count(), 16u * 6u);
}

TEST(ScanGrid, DeterministicAcrossThreadCounts) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  ScanGrid serial{fp, base_config(1), test_rails(fp)};
  ScanGrid parallel{fp, base_config(4), test_rails(fp)};
  const auto a = serial.run();
  const auto b = parallel.run();

  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    for (std::size_t k = 0; k < 6; ++k) {
      EXPECT_EQ(a.sites[i].samples[k].word, b.sites[i].samples[k].word)
          << "site " << i << " sample " << k;
      EXPECT_EQ(a.sites[i].samples[k].bin.to_string(),
                b.sites[i].samples[k].bin.to_string());
    }
  }
}

TEST(ScanGrid, MatchesSerialScanChainBroadcastSiteForSite) {
  // The refactor's load-bearing guarantee: the grid's engine-based words are
  // bit-identical to the serial PsnScanChain reference at EVERY thread count.
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);

  // Serial reference: a PsnScanChain over the *same* rails (reconstructed
  // from the grid's published per-site RNG streams) and the same calibrated
  // thermometers, broadcast at the same schedule.
  const auto reference_config = base_config(1);
  const auto& model = calib::calibrated().model;
  const auto factory = test_rails(fp);
  scan::PsnScanChain chain{fp, reference_config.thermometer};
  std::vector<std::unique_ptr<analog::RailSource>> rails;
  for (const auto& site : fp.sites()) {
    auto rng = ScanGrid::site_rng(reference_config.seed, site.id);
    rails.push_back(factory(site, rng));
    chain.attach_site(
        site.id, analog::RailPair{rails.back().get(), nullptr},
        calib::make_paper_thermometer(model, reference_config.thermometer));
  }
  std::vector<std::vector<core::ThermoWord>> reference;
  for (std::size_t k = 0; k < reference_config.samples_per_site; ++k) {
    const auto snapshot = chain.broadcast_measure(
        Picoseconds{static_cast<double>(k) *
                    reference_config.interval.value()},
        reference_config.code);
    auto& row = reference.emplace_back();
    for (const auto& sm : snapshot) row.push_back(sm.measurement.word);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const auto config = base_config(threads);
    ScanGrid grid{fp, config, test_rails(fp)};
    const auto result = grid.run();
    ASSERT_EQ(result.sites.size(), reference.front().size());
    for (std::size_t k = 0; k < config.samples_per_site; ++k) {
      for (std::size_t i = 0; i < result.sites.size(); ++i) {
        EXPECT_EQ(result.sites[i].samples[k].word, reference[k][i])
            << "threads=" << threads << " site " << i << " sample " << k
            << ": grid diverged from the serial broadcast reference";
      }
    }
  }
}

TEST(ScanGrid, RunIsSingleShot) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  ScanGrid grid{fp, base_config(2), ScanGrid::constant_rails(1.0_V)};
  (void)grid.run();
  EXPECT_THROW((void)grid.run(), std::logic_error);
}

TEST(ScanGrid, WorkerExceptionPropagatesToCaller) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 2, 2);
  auto faulty = [](const scan::SensorSite& site, stats::Xoshiro256&)
      -> std::unique_ptr<analog::RailSource> {
    if (site.id == 3) {
      return std::make_unique<analog::CallbackRail>(
          [](Picoseconds) -> Volt { throw std::runtime_error("rail fault"); });
    }
    return std::make_unique<analog::ConstantRail>(Volt{1.0});
  };
  ScanGrid grid{fp, base_config(2), faulty};
  EXPECT_THROW((void)grid.run(), std::runtime_error);
}

TEST(ScanGrid, AutoRangePolicyTrimsPerSiteAndStaysDeterministic) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(2);
  config.samples_per_site = 10;
  config.code_policy = CodePolicy::kAutoRange;
  // 0.85 V sits outside code 011's window: the per-site controller must
  // walk the code until readings come back in range.
  ScanGrid first{fp, config, ScanGrid::constant_rails(Volt{0.85})};
  ScanGrid again{fp, config, ScanGrid::constant_rails(Volt{0.85})};
  const auto a = first.run();
  const auto b = again.run();
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_GT(a.sites[i].code_steps, 0u);
    EXPECT_NE(a.sites[i].final_code, config.code);
    EXPECT_EQ(a.sites[i].final_code, b.sites[i].final_code);
    for (std::size_t k = 0; k < config.samples_per_site; ++k) {
      EXPECT_EQ(a.sites[i].samples[k].word, b.sites[i].samples[k].word);
      EXPECT_EQ(a.sites[i].samples[k].code, b.sites[i].samples[k].code);
    }
  }
}

TEST(ScanGrid, DropNewestPolicyAccountsForEverySample) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto config = base_config(2);
  config.backpressure = BackpressurePolicy::kDropNewest;
  config.ring_capacity = 2;  // tiny ring: drops become possible, not certain
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();
  std::uint64_t valid = 0;
  for (const auto& site : result.sites) {
    for (bool v : site.valid) valid += v ? 1 : 0;
  }
  EXPECT_EQ(result.produced, 4u * 6u);
  EXPECT_EQ(valid + result.dropped, result.produced);
}

TEST(ScanGrid, FinalCsvSnapshotIsExported) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(2);
  config.snapshot_csv_path = ::testing::TempDir() + "psnt_grid_snapshot.csv";
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  (void)grid.run();
  std::ifstream in(config.snapshot_csv_path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("grid.samples_produced"), std::string::npos);
  EXPECT_NE(content.str().find("site_vdd_volts"), std::string::npos);
}

TEST(ScanGrid, StructuralFidelityAgreesWithBehavioralOnQuietRails) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(2);
  config.samples_per_site = 2;
  ScanGrid behavioral{fp, config, ScanGrid::constant_rails(1.0_V)};
  auto structural_config = config;
  structural_config.fidelity = SiteFidelity::kStructural;
  ScanGrid structural{fp, structural_config, ScanGrid::constant_rails(1.0_V)};
  const auto b = behavioral.run();
  const auto s = structural.run();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(s.sites[i].samples[k].word, b.sites[i].samples[k].word)
          << "gate-level site " << i << " diverged at sample " << k;
    }
  }
}

TEST(ScanGrid, StructuralSitesSurviveMultipleBatches) {
  // samples_per_site far beyond the dispatch batch forces repeated
  // run_measures calls on the same live site simulation — the continuation
  // path that used to throw "cannot schedule an event in the past" because
  // the first run left an enable-drop event pending mid-cycle. Also checks
  // the scheduler telemetry the grid aggregates for structural sites.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(1);
  config.fidelity = SiteFidelity::kStructural;
  config.batch = 8;  // pin below samples_per_site so several batches run
  config.samples_per_site = 20;
  ScanGrid grid{fp, config, ScanGrid::constant_rails(1.0_V)};
  const auto result = grid.run();
  EXPECT_EQ(result.produced, 2u * 20u);
  for (const auto& site : result.sites) {
    ASSERT_EQ(site.samples.size(), 20u);
    for (std::size_t k = 1; k < 20; ++k) {
      EXPECT_EQ(site.samples[k].word, site.samples[0].word)
          << "constant rail must give a constant word (sample " << k << ")";
    }
  }
  EXPECT_GT(grid.telemetry().counter("grid.sim_events").value(), 0u);
  EXPECT_GT(grid.telemetry().counter("grid.structural_ns").value(), 0u);
}

TEST(ScanGrid, StructuralAutoRangeMatchesBehavioralAutoRange) {
  // Auto-range now runs at gate level: the structural sites resolve each
  // measure's code from the context policy and retarget the PG tap through
  // the live MUX selects. On identical rails the trim sequence — and hence
  // every word and code — must match the behavioral sites sample for
  // sample.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(2);
  config.code_policy = CodePolicy::kAutoRange;
  config.samples_per_site = 10;
  ScanGrid behavioral{fp, config, ScanGrid::constant_rails(0.84_V)};
  auto structural_config = config;
  structural_config.fidelity = SiteFidelity::kStructural;
  ScanGrid structural{fp, structural_config,
                      ScanGrid::constant_rails(0.84_V)};
  const auto b = behavioral.run();
  const auto s = structural.run();
  bool stepped = false;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_EQ(s.sites[i].samples[k].word, b.sites[i].samples[k].word)
          << "site " << i << " sample " << k;
      EXPECT_EQ(s.sites[i].samples[k].code, b.sites[i].samples[k].code)
          << "site " << i << " sample " << k;
      stepped |= s.sites[i].samples[k].code != config.code;
    }
  }
  EXPECT_TRUE(stepped) << "the sagged rail must force a real range step";
}

TEST(ScanGrid, StructuralCompiledMatchesEventDrivenAcrossThreads) {
  // The compiled kernel is the structural default; the event-driven
  // scheduler stays the oracle. Pin one grid to the oracle through an
  // engine factory and require bit-identity from compiled grids at 1, 2
  // and 8 threads.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 2, 2);
  auto config = base_config(1);
  config.fidelity = SiteFidelity::kStructural;
  config.samples_per_site = 4;

  auto oracle_config = config;
  oracle_config.engine_factory = [](std::uint32_t,
                                    const analog::RailPair& rails,
                                    const core::EngineSiteOptions& options) {
    const auto& model = calib::calibrated().model;
    auto event_options = options;
    event_options.structural_compile = false;
    return core::make_structural_engine(
        calib::make_paper_array(model),
        core::PulseGenerator{model.pg_config()}, rails,
        core::ThermometerConfig{}.control_period, event_options);
  };
  ScanGrid oracle{fp, oracle_config, test_rails(fp)};
  const auto expected = oracle.run();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto compiled_config = config;
    compiled_config.threads = threads;
    ScanGrid compiled{fp, compiled_config, test_rails(fp)};
    const auto actual = compiled.run();
    ASSERT_EQ(actual.sites.size(), expected.sites.size());
    for (std::size_t i = 0; i < expected.sites.size(); ++i) {
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(actual.sites[i].samples[k].word,
                  expected.sites[i].samples[k].word)
            << threads << " threads: site " << i << " sample " << k;
      }
    }
  }
}

TEST(ScanGrid, RejectsInvalidConfigurations) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(1);
  config.samples_per_site = 0;
  EXPECT_THROW(
      (ScanGrid{fp, config, ScanGrid::constant_rails(1.0_V)}),
      std::logic_error);

  EXPECT_THROW((ScanGrid{fp, base_config(1), nullptr}), std::logic_error);
}

}  // namespace
}  // namespace psnt::grid
