#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "fault/fault_injector.h"
#include "grid/resilience.h"

namespace psnt::fault {
namespace {

using core::ThermoWord;

FaultStormConfig full_storm() {
  FaultStormConfig storm;
  storm.p_stuck_site = 0.3;
  storm.p_metastable = 0.3;
  storm.p_code_drift = 0.3;
  storm.p_rail_droop = 0.3;
  storm.p_dead_site = 0.3;
  storm.p_hung = 0.3;
  storm.p_ring_storm = 0.3;
  return storm;
}

TEST(FaultInjector, ToStringCoversEveryKind) {
  std::set<std::string> names;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    names.insert(to_string(static_cast<FaultKind>(k)));
  }
  EXPECT_EQ(names.size(), kFaultKindCount);
  EXPECT_EQ(names.count("unknown"), 0u);
}

TEST(FaultInjector, RejectsOutOfRangeRates) {
  FaultStormConfig storm;
  storm.p_hung = 1.5;
  EXPECT_THROW((FaultInjector{1, storm}), std::logic_error);
  storm.p_hung = -0.1;
  EXPECT_THROW((FaultInjector{1, storm}), std::logic_error);
}

TEST(FaultInjector, QueriesArePureAndSeedDeterministic) {
  const FaultInjector a(42, full_storm());
  const FaultInjector b(42, full_storm());
  const FaultInjector c(43, full_storm());
  bool any_fault = false;
  bool differs_across_seeds = false;
  for (std::uint32_t site = 0; site < 8; ++site) {
    for (std::uint32_t sample = 0; sample < 8; ++sample) {
      for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
        const auto fa = a.measure_faults(site, sample, attempt, 7);
        // Same injector asked twice and a twin with the same seed agree.
        const auto fa2 = a.measure_faults(site, sample, attempt, 7);
        const auto fb = b.measure_faults(site, sample, attempt, 7);
        const auto fc = c.measure_faults(site, sample, attempt, 7);
        std::vector<FaultEvent> ta, ta2, tb, tc;
        FaultInjector::append_events(fa, site, sample, attempt, ta);
        FaultInjector::append_events(fa2, site, sample, attempt, ta2);
        FaultInjector::append_events(fb, site, sample, attempt, tb);
        FaultInjector::append_events(fc, site, sample, attempt, tc);
        EXPECT_EQ(ta, ta2);
        EXPECT_EQ(ta, tb);
        any_fault |= fa.any();
        differs_across_seeds |= !(ta == tc);
      }
    }
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(differs_across_seeds);
}

TEST(FaultInjector, SiteScopedFaultsPersistAcrossSamplesAndAttempts) {
  FaultStormConfig storm;
  storm.p_stuck_site = 1.0;
  storm.p_dead_site = 1.0;
  storm.dead_onset_horizon = 4;
  const FaultInjector inj(7, storm);
  const auto first = inj.measure_faults(3, 0, 0, 7);
  ASSERT_GE(first.stuck_bit, 0);
  for (std::uint32_t sample = 0; sample < 6; ++sample) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const auto f = inj.measure_faults(3, sample, attempt, 7);
      EXPECT_EQ(f.stuck_bit, first.stuck_bit);
      EXPECT_EQ(f.stuck_value, first.stuck_value);
      EXPECT_EQ(f.dead_onset, first.dead_onset);
      EXPECT_EQ(f.dead, sample >= first.dead_onset);
    }
  }
  EXPECT_LT(first.dead_onset, 4u);
}

TEST(FaultInjector, AttemptScopedFaultsRerollOnRetry) {
  FaultStormConfig storm;
  storm.p_hung = 0.5;
  const FaultInjector inj(11, storm);
  bool recovered_by_retry = false;
  for (std::uint32_t site = 0; site < 16 && !recovered_by_retry; ++site) {
    for (std::uint32_t sample = 0; sample < 16; ++sample) {
      const bool a0 = inj.measure_faults(site, sample, 0, 7).hung;
      const bool a1 = inj.measure_faults(site, sample, 1, 7).hung;
      if (a0 && !a1) {
        recovered_by_retry = true;
        break;
      }
    }
  }
  EXPECT_TRUE(recovered_by_retry)
      << "a hang must be able to clear on retry (attempt-keyed lane)";
}

TEST(FaultInjector, SampleScopedFaultsSurviveRetry) {
  FaultStormConfig storm;
  storm.p_code_drift = 0.5;
  storm.p_rail_droop = 0.5;
  const FaultInjector inj(13, storm);
  for (std::uint32_t site = 0; site < 8; ++site) {
    for (std::uint32_t sample = 0; sample < 8; ++sample) {
      const auto a0 = inj.measure_faults(site, sample, 0, 7);
      const auto a3 = inj.measure_faults(site, sample, 3, 7);
      EXPECT_EQ(a0.code_delta, a3.code_delta);
      EXPECT_EQ(a0.droop_volts, a3.droop_volts);
    }
  }
}

TEST(FaultInjector, ScheduledFaultsApplyInsideTheirWindowOnly) {
  FaultInjector inj(1);  // no storm: every fault below is scheduled
  inj.schedule({.site_id = 2,
                .first_sample = 3,
                .last_sample = 5,
                .kind = FaultKind::kDeadSite});
  inj.schedule({.site_id = 2,
                .first_sample = 0,
                .last_sample = 0xffffffffu,
                .kind = FaultKind::kStuckDsNode,
                .detail = 4,
                .stuck_value = true});
  inj.schedule({.site_id = 9,
                .first_sample = 1,
                .last_sample = 1,
                .kind = FaultKind::kRingOverflow,
                .detail = 12});
  inj.schedule({.site_id = 9,
                .first_sample = 2,
                .last_sample = 2,
                .kind = FaultKind::kRailDroop,
                .droop_volts = Volt{0.2}});

  EXPECT_FALSE(inj.measure_faults(2, 2, 0, 7).dead);
  EXPECT_TRUE(inj.measure_faults(2, 3, 0, 7).dead);
  EXPECT_TRUE(inj.measure_faults(2, 5, 2, 7).dead);
  EXPECT_FALSE(inj.measure_faults(2, 6, 0, 7).dead);
  EXPECT_FALSE(inj.measure_faults(3, 4, 0, 7).dead);

  const auto stuck = inj.measure_faults(2, 0, 0, 7);
  EXPECT_EQ(stuck.stuck_bit, 4);
  EXPECT_TRUE(stuck.stuck_value);

  EXPECT_EQ(inj.measure_faults(9, 1, 0, 7).ring_stall_pushes, 12u);
  EXPECT_EQ(inj.measure_faults(9, 0, 0, 7).ring_stall_pushes, 0u);
  EXPECT_DOUBLE_EQ(inj.measure_faults(9, 2, 0, 7).droop_volts, 0.2);

  EXPECT_THROW(inj.schedule({.site_id = 0, .first_sample = 5, .last_sample = 2}),
               std::logic_error);
}

TEST(FaultInjector, ApplyWordForcesStuckThenFlips) {
  MeasureFaults f;
  f.stuck_bit = 2;
  f.stuck_value = false;
  ThermoWord word = ThermoWord::of_count(7, 7);  // all ones
  f.apply_word(word);
  EXPECT_FALSE(word.bit(2));
  EXPECT_EQ(word.count_ones(), 6u);

  // A metastable flip on the stuck bit flips the *stuck* level — the DS node
  // is upstream of the FF.
  f.flip_bit = 2;
  word = ThermoWord::of_count(7, 7);
  f.apply_word(word);
  EXPECT_TRUE(word.bit(2));

  // Out-of-range indices are ignored, not UB.
  MeasureFaults oob;
  oob.stuck_bit = 30;
  oob.flip_bit = 31;
  word = ThermoWord::of_count(3, 7);
  oob.apply_word(word);
  EXPECT_EQ(word, ThermoWord::of_count(3, 7));
}

TEST(FaultInjector, AppendEventsEmitsOneEventPerRealizedFault) {
  MeasureFaults f;
  f.hung = true;
  f.flip_bit = 1;
  f.droop_volts = 0.15;
  std::vector<FaultEvent> trace;
  FaultInjector::append_events(f, 5, 9, 2, trace);
  ASSERT_EQ(trace.size(), 3u);
  for (const auto& e : trace) {
    EXPECT_EQ(e.site_id, 5u);
    EXPECT_EQ(e.sample, 9u);
    EXPECT_EQ(e.attempt, 2u);
  }
  EXPECT_EQ(trace[0].kind, FaultKind::kHungSite);
  EXPECT_EQ(trace[1].kind, FaultKind::kMetastableFlip);
  EXPECT_EQ(trace[1].detail, 1);
  EXPECT_EQ(trace[2].kind, FaultKind::kRailDroop);
  EXPECT_EQ(trace[2].detail, -150);  // millivolts, negative = sag

  FaultInjector::append_events(MeasureFaults{}, 0, 0, 0, trace);
  EXPECT_EQ(trace.size(), 3u) << "a clean measure adds no events";
}

TEST(FaultInjector, OffsetRailForwardsPlusOffset) {
  const analog::ConstantRail inner(Volt{1.0});
  OffsetRail rail(&inner);
  EXPECT_DOUBLE_EQ(rail.at(Picoseconds{0.0}).value(), 1.0);
  rail.set_offset(-0.12);
  EXPECT_DOUBLE_EQ(rail.at(Picoseconds{5.0}).value(), 0.88);
  rail.set_offset(0.0);
  EXPECT_DOUBLE_EQ(rail.at(Picoseconds{9.0}).value(), 1.0);
}

TEST(FaultInjector, PdnDroopDepthScalesWithStimulus) {
  psn::LumpedPdnParams pdn;
  const Volt small = pdn_droop_depth(pdn, 1.0);
  const Volt large = pdn_droop_depth(pdn, 4.0);
  EXPECT_GT(small.value(), 0.0);
  EXPECT_GT(large.value(), small.value());
  EXPECT_LT(large.value(), pdn.v_reg.value());
  EXPECT_THROW((void)pdn_droop_depth(pdn, 0.0), std::logic_error);
}

TEST(Resilience, MajorityWordOutvotesSingleCorruptVote) {
  const ThermoWord clean = ThermoWord::of_count(4, 7);
  ThermoWord flipped = clean;
  flipped.set_bit(6, true);
  const std::vector<ThermoWord> votes{clean, flipped, clean};
  EXPECT_EQ(grid::majority_word(votes), clean);

  // Flips on distinct bits: the majority can match no individual vote.
  ThermoWord a = clean, b = clean, c = clean;
  a.set_bit(4, true);
  b.set_bit(5, true);
  c.set_bit(6, true);
  const std::vector<ThermoWord> scattered{a, b, c};
  EXPECT_EQ(grid::majority_word(scattered), clean);
}

TEST(Resilience, MajorityWordValidatesItsPanel) {
  const ThermoWord w7 = ThermoWord::of_count(2, 7);
  EXPECT_THROW((void)grid::majority_word(std::vector<ThermoWord>{}),
               std::logic_error);
  EXPECT_THROW((void)grid::majority_word(std::vector<ThermoWord>{w7, w7}),
               std::logic_error);
  const std::vector<ThermoWord> mixed{w7, ThermoWord::of_count(2, 5), w7};
  EXPECT_THROW((void)grid::majority_word(mixed), std::logic_error);
  EXPECT_EQ(grid::majority_word(std::vector<ThermoWord>{w7}), w7);
}

TEST(Resilience, BoundedBackoffGrowsAndSaturates) {
  grid::ResiliencePolicy policy;
  EXPECT_EQ(grid::bounded_backoff_us(policy, 1), 0u);  // base 0 = no sleep
  policy.backoff_base_us = 10;
  policy.backoff_cap_us = 65;
  EXPECT_EQ(grid::bounded_backoff_us(policy, 0), 0u);
  EXPECT_EQ(grid::bounded_backoff_us(policy, 1), 10u);
  EXPECT_EQ(grid::bounded_backoff_us(policy, 2), 20u);
  EXPECT_EQ(grid::bounded_backoff_us(policy, 3), 40u);
  EXPECT_EQ(grid::bounded_backoff_us(policy, 4), 65u);
  EXPECT_EQ(grid::bounded_backoff_us(policy, 60), 65u);
}

}  // namespace
}  // namespace psnt::fault
