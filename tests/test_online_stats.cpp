#include "stats/online_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace psnt::stats {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (double x : xs) s.add(x);

  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.range(), 15.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(2.0);
  a.add(4.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, CountsInRangeAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.99);  // bin 3
  h.add(-0.5);  // underflow
  h.add(2.0);   // overflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 1000; ++i) {
    h.add((i + 0.5) / 1000.0);  // uniform fill
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.06);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.06);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.06);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Histogram, QuantileValidatesInput) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(1.5), std::logic_error);
}

}  // namespace
}  // namespace psnt::stats
