// Full gate-level system against time-varying PDN rails: the last fidelity
// gap. The behavioral path samples the rail at the sense-launch instant; the
// structural path lets every inverter see the rail at its own event times.
// On rails that move slowly relative to one transaction the two must agree;
// on a fast-moving rail the structural word must still decode to a bin that
// brackets the true launch-time voltage within one LSB.
#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/full_system.h"
#include "psn/pdn.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

psn::Waveform droop_wave() {
  psn::LumpedPdnParams p;
  p.v_reg = 1.0_V;
  p.resistance = Ohm{0.004};
  p.inductance = NanoHenry{0.08};
  p.decap = Picofarad{120000.0};
  psn::LumpedPdn pdn{p};
  psn::StepCurrent load{Ampere{1.0}, Ampere{3.5}, 30000.0_ps};
  return pdn.solve(load, 200000.0_ps, 10.0_ps);
}

TEST(FullSystemNoisy, GateLevelMeasuresInsidePdnDroop) {
  const auto wave = droop_wave();
  const analog::SampledRail rail = wave.to_rail();
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};

  sim::Simulator sim;
  FullStructuralSystem::Config cfg;
  cfg.code = DelayCode{3};
  FullStructuralSystem system(sim, "sys", array, pg,
                              analog::RailPair{&rail, nullptr}, cfg);

  const auto words = system.run_measures(8);
  ASSERT_EQ(words.size(), 8u);

  // Each decoded bin must bracket the true rail at (or within one LSB of)
  // its own sensing window; the word count must dip during the droop.
  std::size_t min_count = 7;
  std::size_t max_count = 0;
  for (const auto& w : words) {
    EXPECT_TRUE(w.is_valid_thermometer()) << w.to_string();
    min_count = std::min(min_count, w.count_ones());
    max_count = std::max(max_count, w.count_ones());
  }
  // The rail starts near 0.996 V (count 5) and droops past 0.95 V.
  EXPECT_GE(max_count, 5u);
  EXPECT_LT(min_count, 5u);
}

TEST(FullSystemNoisy, SlowRampMatchesBehavioralBins) {
  // A rail moving ~2 mV per transaction: structural and behavioral must
  // agree to within one count at every measure.
  analog::CallbackRail vdd{[](Picoseconds t) {
    return Volt{1.05 - 2.0e-7 * t.value()};  // −0.2 mV/ns
  }};
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};

  sim::Simulator sim;
  FullStructuralSystem::Config cfg;
  cfg.code = DelayCode{3};
  FullStructuralSystem system(sim, "sys", array, pg,
                              analog::RailPair{&vdd, nullptr}, cfg);
  const auto words = system.run_measures(12);

  // Behavioral comparison at the approximate sense instants: the exact
  // instants differ by a few ns of control sequencing, so compare counts
  // with a one-LSB allowance near bin boundaries.
  std::size_t mismatched = 0;
  for (std::size_t k = 0; k < words.size(); ++k) {
    // Reconstruct the approximate sense time of measure k: power-on settle
    // (2 us offset used by the harness) + k transactions of 9 cycles.
    const double t_approx = 2000.0 + (static_cast<double>(k) * 9.0 + 6.0) *
                                         1250.0;
    const auto behavioral =
        array.measure(vdd.at(Picoseconds{t_approx}), model.skew(DelayCode{3}));
    const auto diff = static_cast<int>(words[k].count_ones()) -
                      static_cast<int>(behavioral.count_ones());
    if (diff != 0) ++mismatched;
    EXPECT_LE(std::abs(diff), 1) << "measure " << k;
  }
  // Most measures agree exactly; boundary crossings may differ by one.
  EXPECT_LE(mismatched, words.size() / 2);
}

}  // namespace
}  // namespace psnt::core
