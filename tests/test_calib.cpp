// The reproduction's keystone: the calibrated model reproduces every anchor
// the paper quotes (DESIGN.md §6, EXPERIMENTS.md).
#include "calib/fit.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psnt::calib {
namespace {

using namespace psnt::literals;

TEST(Calibration, FitConvergesToSmallResidual) {
  const FitResult& fit = calibrated();
  // Objective includes the code-010 prediction residuals + priors; anything
  // below a few ps^2 means sub-ps timing closure on the anchors.
  EXPECT_LT(fit.objective, 5.0);
}

TEST(Calibration, ParametersPhysicallyPlausibleFor90nm) {
  const auto& p = calibrated().model.inverter.params();
  EXPECT_GT(p.alpha, 1.0);
  EXPECT_LT(p.alpha, 1.8);
  EXPECT_GT(p.v_threshold.value(), 0.2);
  EXPECT_LT(p.v_threshold.value(), 0.45);
  EXPECT_GT(p.drive_k_pf_per_ps, 0.01);
  EXPECT_LT(p.drive_k_pf_per_ps, 0.10);
  EXPECT_GT(calibrated().model.cp_insertion.value(), 20.0);
  EXPECT_LT(calibrated().model.cp_insertion.value(), 200.0);
}

TEST(Calibration, Fig4AnchorExact) {
  const auto& model = calibrated().model;
  const auto thr = model.inverter.threshold_supply(
      2.0_pF, model.budget(core::DelayCode{3}));
  ASSERT_TRUE(thr.has_value());
  EXPECT_NEAR(thr->value(), 0.9360, 5e-4);
}

TEST(Calibration, Fig5Code011ThresholdsExact) {
  const auto& model = calibrated().model;
  const auto& anchors = paper_anchors();
  const Picoseconds b = model.budget(core::DelayCode{3});
  ASSERT_EQ(model.array_loads.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    const auto thr =
        model.inverter.threshold_supply(model.array_loads[i], b);
    ASSERT_TRUE(thr.has_value()) << i;
    EXPECT_NEAR(thr->value(), anchors.fig5_code011_thresholds[i].value(),
                1e-4)
        << "bit " << i;
  }
}

TEST(Calibration, Fig5Code010RangePredictedWithin15mV) {
  // These two numbers are NOT fitted exactly — they are predictions of the
  // physical model, and land within ~10 mV of the paper (EXPERIMENTS.md).
  const auto& model = calibrated().model;
  const Picoseconds b = model.budget(core::DelayCode{2});
  const auto lo =
      model.inverter.threshold_supply(model.array_loads.front(), b);
  const auto hi = model.inverter.threshold_supply(model.array_loads.back(), b);
  ASSERT_TRUE(lo && hi);
  EXPECT_NEAR(lo->value(), 0.951, 0.015);
  EXPECT_NEAR(hi->value(), 1.237, 0.015);
}

TEST(Calibration, LoadsAscendAndBracket2pF) {
  const auto& loads = calibrated().model.array_loads;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_GT(loads[i].value(), loads[i - 1].value());
  }
  // Fig. 4's 2 pF point (threshold 0.936 V) falls between bits 3 and 4
  // (thresholds 0.929 / 0.9605 V), so the loads must bracket 2 pF there.
  EXPECT_LT(loads[2].value(), 2.0);
  EXPECT_GT(loads[3].value(), 2.0);
}

TEST(Calibration, Fig9WordsReproduceExactly) {
  const auto& fit = calibrated();
  const auto array = make_paper_array(fit.model);
  const Picoseconds skew = fit.model.skew(core::DelayCode{3});
  EXPECT_EQ(array.measure(1.0_V, skew).to_string(), "0011111");
  EXPECT_EQ(array.measure(0.9_V, skew).to_string(), "0000011");
}

TEST(Calibration, Fig9BinsMatchQuotedIntervals) {
  const auto& fit = calibrated();
  const auto array = make_paper_array(fit.model);
  const Picoseconds skew = fit.model.skew(core::DelayCode{3});
  const auto bin1 = array.decode(core::ThermoWord::from_string("0011111"),
                                 skew);
  ASSERT_TRUE(bin1.in_range());
  EXPECT_NEAR(bin1.lo->value(), 0.992, 1e-3);
  EXPECT_NEAR(bin1.hi->value(), 1.021, 1e-3);
  const auto bin2 = array.decode(core::ThermoWord::from_string("0000011"),
                                 skew);
  ASSERT_TRUE(bin2.in_range());
  EXPECT_NEAR(bin2.lo->value(), 0.896, 1e-3);
  EXPECT_NEAR(bin2.hi->value(), 0.929, 1e-3);
}

TEST(Calibration, ReportCoversEveryAnchor) {
  const auto& fit = calibrated();
  // 1 (fig4) + 2 (code-010 range) + 7 (code-011 thresholds).
  EXPECT_EQ(fit.report.size(), 10u);
  for (const auto& r : fit.report) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_GT(r.achieved, 0.0) << r.name;
    EXPECT_LT(std::fabs(r.error()), 0.02) << r.name;
  }
}

TEST(Calibration, DeterministicAcrossRuns) {
  const FitResult a = fit_paper_model();
  const FitResult b = fit_paper_model();
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_DOUBLE_EQ(a.model.cp_insertion.value(), b.model.cp_insertion.value());
  ASSERT_EQ(a.model.array_loads.size(), b.model.array_loads.size());
  for (std::size_t i = 0; i < a.model.array_loads.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.model.array_loads[i].value(),
                     b.model.array_loads[i].value());
  }
}

TEST(Calibration, PaperThermometerFactoryIsComplete) {
  auto t = make_paper_thermometer(calibrated().model);
  EXPECT_EQ(t.high_sense().bits(), 7u);
  EXPECT_EQ(t.low_sense().bits(), 7u);
  const auto& pg_cfg = t.pulse_generator().config();
  EXPECT_DOUBLE_EQ(pg_cfg.cp_insertion.value(),
                   calibrated().model.cp_insertion.value());
}

TEST(Calibration, ReportRendersAnchorsAndModel) {
  std::ostringstream os;
  write_calibration_report(os, calibrated());
  const std::string text = os.str();
  EXPECT_NE(text.find("fitted alpha-power model"), std::string::npos);
  EXPECT_NE(text.find("CP insertion delay"), std::string::npos);
  EXPECT_NE(text.find("fig4_threshold_at_2pF_V"), std::string::npos);
  EXPECT_NE(text.find("fig5_code011_thr7_V"), std::string::npos);
  EXPECT_NE(text.find("array loads (pF):"), std::string::npos);
  EXPECT_NE(text.find("0.9360"), std::string::npos);
}

TEST(Anchors, DelayTableMatchesPaper) {
  const auto& a = paper_anchors();
  const double expected[8] = {26, 40, 50, 65, 77, 92, 100, 107};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.delay_table[i].value(), expected[i]);
  }
  EXPECT_DOUBLE_EQ(a.control_critical_path.value(), 1220.0);
}

}  // namespace
}  // namespace psnt::calib
