// Gate-level scan readout: capture a word, shift it out serially, and match
// the behavioral chain's serialization order.
#include "scan/structural_scan.h"

#include <gtest/gtest.h>

#include "sim/probe.h"

namespace psnt::scan {
namespace {

using namespace psnt::literals;

constexpr double kPeriod = 1250.0;

struct Rig {
  sim::Simulator sim;
  std::vector<sim::Net*> out;  // pretend sensor OUT nets
  sim::Net& scan_in;
  sim::Net& shift_en;
  sim::Net& scan_clk;
  StructuralScanRegister reg;

  explicit Rig(const std::string& word)  // paper order, e.g. "0011111"
      : scan_in(sim.net("scan_in")),
        shift_en(sim.net("shift_en")),
        scan_clk(sim.net("scan_clk")),
        reg(sim, "sr",
            [&] {
              const auto w = core::ThermoWord::from_string(word);
              for (std::size_t b = 0; b < w.width(); ++b) {
                auto& n = sim.net("out" + std::to_string(b));
                sim.drive(n, 0.0_ps, sim::from_bool(w.bit(b)));
                out.push_back(&n);
              }
              return out;
            }(),
            scan_in, shift_en, scan_clk) {
    sim.drive(scan_in, 0.0_ps, sim::Logic::L0);
    sim.drive(scan_clk, 0.0_ps, sim::Logic::L0);
  }

  // One capture edge with shift disabled.
  void capture() {
    sim.drive(shift_en, sim.now() + 100.0_ps, sim::Logic::L0);
    const double t = sim.now().value() + kPeriod;
    sim.drive(scan_clk, Picoseconds{t}, sim::Logic::L1);
    sim.drive(scan_clk, Picoseconds{t + kPeriod / 2.0}, sim::Logic::L0);
    sim.run_until(Picoseconds{t + kPeriod});
  }

  std::vector<bool> shift(std::size_t cycles) {
    sim.drive(shift_en, sim.now() + 100.0_ps, sim::Logic::L1);
    sim.run_until(sim.now() + 200.0_ps);
    return run_scan_shift(sim, scan_clk, reg.scan_out(), sim.now(),
                          Picoseconds{kPeriod}, cycles);
  }
};

TEST(StructuralScan, CaptureLoadsTheSensorWord) {
  Rig rig("0011111");
  rig.capture();
  EXPECT_EQ(rig.reg.contents().to_string(), "0011111");
}

TEST(StructuralScan, ShiftOutEmitsBitZeroFirst) {
  Rig rig("0011111");
  rig.capture();
  const auto bits = rig.shift(7);
  // Behavioral order: bit 0 (lowest threshold) first → five 1s then two 0s.
  const std::vector<bool> expected{true, true, true, true, true, false,
                                   false};
  EXPECT_EQ(bits, expected);
}

TEST(StructuralScan, MatchesBehavioralSerialization) {
  for (const char* word : {"0000000", "0000011", "0011111", "1111111"}) {
    Rig rig(word);
    rig.capture();
    const auto bits = rig.shift(7);
    const auto w = core::ThermoWord::from_string(word);
    ASSERT_EQ(bits.size(), 7u);
    for (std::size_t b = 0; b < 7; ++b) {
      EXPECT_EQ(bits[b], w.bit(b)) << word << " bit " << b;
    }
  }
}

TEST(StructuralScan, ScanInFillsFromUpstream) {
  Rig rig("1111111");
  rig.capture();
  // Shift 7 bits out with scan_in low: the register drains to zeros.
  (void)rig.shift(7);
  EXPECT_EQ(rig.reg.contents().to_string(), "0000000");
}

TEST(StructuralScan, TwoRegistersDaisyChain) {
  sim::Simulator sim;
  sim::Net& scan_in = sim.net("scan_in");
  sim::Net& shift_en = sim.net("shift_en");
  sim::Net& clk = sim.net("clk");
  std::vector<sim::Net*> out_a, out_b;
  const auto wa = core::ThermoWord::from_string("0000011");
  const auto wb = core::ThermoWord::from_string("0011111");
  for (std::size_t b = 0; b < 7; ++b) {
    auto& na = sim.net("a" + std::to_string(b));
    auto& nb = sim.net("b" + std::to_string(b));
    sim.drive(na, 0.0_ps, sim::from_bool(wa.bit(b)));
    sim.drive(nb, 0.0_ps, sim::from_bool(wb.bit(b)));
    out_a.push_back(&na);
    out_b.push_back(&nb);
  }
  // Site B is closer to the output: A's chain feeds B's scan_in.
  StructuralScanRegister reg_b(sim, "rb", out_b, sim.net("ab_link"),
                               shift_en, clk);
  StructuralScanRegister reg_a(sim, "ra", out_a, scan_in, shift_en, clk);
  sim.add<sim::BufGate>("link", reg_a.scan_out(), sim.net("ab_link"),
                        1.0_ps);
  sim.drive(scan_in, 0.0_ps, sim::Logic::L0);
  sim.drive(clk, 0.0_ps, sim::Logic::L0);
  sim.drive(shift_en, 0.0_ps, sim::Logic::L0);

  // Capture both, then shift 14 bits from B's output.
  sim.drive(clk, 1250.0_ps, sim::Logic::L1);
  sim.drive(clk, 1875.0_ps, sim::Logic::L0);
  sim.run_until(2500.0_ps);
  EXPECT_EQ(reg_a.contents().to_string(), "0000011");
  EXPECT_EQ(reg_b.contents().to_string(), "0011111");

  sim.drive(shift_en, 2600.0_ps, sim::Logic::L1);
  sim.run_until(2700.0_ps);
  const auto bits = run_scan_shift(sim, clk, reg_b.scan_out(), sim.now(),
                                   Picoseconds{1250.0}, 14);
  // B's word leaves first (bit 0 first), then A's.
  for (std::size_t b = 0; b < 7; ++b) {
    EXPECT_EQ(bits[b], wb.bit(b)) << "B bit " << b;
    EXPECT_EQ(bits[7 + b], wa.bit(b)) << "A bit " << b;
  }
}

}  // namespace
}  // namespace psnt::scan
