#include "stats/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace psnt::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01StaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(0.9, 1.1);
    EXPECT_GE(u, 0.9);
    EXPECT_LT(u, 1.1);
  }
}

TEST(Rng, UniformIndexCoversDomain) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIndexZeroDomain) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(42);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(77);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256 parent(100);
  Xoshiro256 child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, JumpChangesSequence) {
  Xoshiro256 a(55);
  Xoshiro256 b(55);
  b.jump();
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace psnt::stats
