#include "core/auto_range.h"

#include <gtest/gtest.h>

#include "analog/rail.h"
#include "calib/fit.h"
#include "core/thermometer.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

EncodedWord reading_of(std::size_t ones, std::size_t width = 7) {
  return Encoder{}.encode(ThermoWord::of_count(ones, width));
}

TEST(AutoRange, StartsAtInitialCode) {
  AutoRangeController ctrl;
  EXPECT_EQ(ctrl.code(), DelayCode{3});
  AutoRangeConfig cfg;
  cfg.initial = DelayCode{5};
  EXPECT_EQ(AutoRangeController{cfg}.code(), DelayCode{5});
}

TEST(AutoRange, UnderflowStepsCodeUpImmediately) {
  AutoRangeController ctrl;
  const auto next = ctrl.observe(reading_of(0), 7);
  EXPECT_EQ(next, DelayCode{4});
  EXPECT_EQ(ctrl.steps_taken(), 1u);
}

TEST(AutoRange, OverflowStepsCodeDownImmediately) {
  AutoRangeController ctrl;
  const auto next = ctrl.observe(reading_of(7), 7);
  EXPECT_EQ(next, DelayCode{2});
}

TEST(AutoRange, MidRangeReadingsHold) {
  AutoRangeController ctrl;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ctrl.observe(reading_of(4), 7), DelayCode{3});
  }
  EXPECT_EQ(ctrl.steps_taken(), 0u);
}

TEST(AutoRange, SaturatesAtCodeExtremes) {
  AutoRangeConfig cfg;
  cfg.initial = DelayCode{7};
  AutoRangeController ctrl{cfg};
  for (int i = 0; i < 5; ++i) ctrl.observe(reading_of(0), 7);
  EXPECT_EQ(ctrl.code(), DelayCode{7});  // cannot go higher
  cfg.initial = DelayCode{0};
  AutoRangeController low{cfg};
  for (int i = 0; i < 5; ++i) low.observe(reading_of(7), 7);
  EXPECT_EQ(low.code(), DelayCode{0});
}

TEST(AutoRange, EdgeReadingsNeedPatience) {
  AutoRangeConfig cfg;
  cfg.edge_patience = 3;
  AutoRangeController ctrl{cfg};
  // Two low-edge readings: no step yet.
  EXPECT_EQ(ctrl.observe(reading_of(1), 7), DelayCode{3});
  EXPECT_EQ(ctrl.observe(reading_of(1), 7), DelayCode{3});
  // Third consecutive one triggers.
  EXPECT_EQ(ctrl.observe(reading_of(1), 7), DelayCode{4});
}

TEST(AutoRange, MidRangeReadingResetsPatience) {
  AutoRangeConfig cfg;
  cfg.edge_patience = 2;
  AutoRangeController ctrl{cfg};
  (void)ctrl.observe(reading_of(1), 7);
  (void)ctrl.observe(reading_of(4), 7);  // resets the streak
  (void)ctrl.observe(reading_of(1), 7);
  EXPECT_EQ(ctrl.code(), DelayCode{3});
}

TEST(AutoRange, HighEdgeStreakStepsDown) {
  AutoRangeConfig cfg;
  cfg.edge_patience = 2;
  AutoRangeController ctrl{cfg};
  (void)ctrl.observe(reading_of(6), 7);
  EXPECT_EQ(ctrl.observe(reading_of(6), 7), DelayCode{2});
}

TEST(AutoRange, ResetRestoresInitialState) {
  AutoRangeController ctrl;
  (void)ctrl.observe(reading_of(0), 7);
  (void)ctrl.observe(reading_of(0), 7);
  EXPECT_EQ(ctrl.code(), DelayCode{5});
  ctrl.reset();
  EXPECT_EQ(ctrl.code(), DelayCode{3});
  EXPECT_EQ(ctrl.steps_taken(), 0u);
}

TEST(AutoRange, ChasesADriftingRailBackIntoRange) {
  // Closed loop against the real thermometer: the rail sits at 1.15 V,
  // far above the code-011 window; the controller must walk the code down
  // until the reading is in-range, then hold.
  auto thermometer = calib::make_paper_thermometer(calib::calibrated().model);
  analog::ConstantRail vdd{1.15_V};
  AutoRangeController ctrl;

  DelayCode code = ctrl.code();
  double t = 0.0;
  int in_range_streak = 0;
  for (int i = 0; i < 12 && in_range_streak < 3; ++i) {
    const auto m = thermometer.measure_vdd(analog::RailPair{&vdd, nullptr},
                                           Picoseconds{t}, code);
    const auto enc = thermometer.encode(m.word);
    in_range_streak = m.bin.in_range() ? in_range_streak + 1 : 0;
    code = ctrl.observe(enc, m.word.width());
    t += 50000.0;
  }
  EXPECT_GE(in_range_streak, 3);
  EXPECT_LT(ctrl.code().value(), 3);  // walked down toward a higher window
}

TEST(AutoRange, ValidatesConfig) {
  AutoRangeConfig cfg;
  cfg.edge_patience = 0;
  EXPECT_THROW(AutoRangeController{cfg}, std::logic_error);
  AutoRangeController ok;
  EXPECT_THROW((void)ok.observe(reading_of(3), 0), std::logic_error);
}

}  // namespace
}  // namespace psnt::core
