#include "core/range_tuner.h"

#include <gtest/gtest.h>

#include "analog/process.h"
#include "calib/fit.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

TEST(RangeTuner, PicksThePaperCodeForThePaperWindow) {
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  // Fig. 5's code-011 window.
  const auto result = tune_for_window(array, pg, 0.827_V, 1.053_V);
  EXPECT_EQ(result.code, DelayCode{3});
  EXPECT_LT(result.window_error, 0.02);
}

TEST(RangeTuner, PicksAHigherWindowCode) {
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  // Overvoltage monitoring (the paper's code-010 motivation).
  const auto result = tune_for_window(array, pg, 0.95_V, 1.24_V);
  EXPECT_EQ(result.code, DelayCode{2});
}

TEST(RangeTuner, SmallerSkewShiftsWindowUp) {
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  // Ranges must be monotone in code: larger code → more time → lower window.
  double prev_lo = 10.0;
  for (std::uint8_t c = 0; c < 8; ++c) {
    const auto range = array.dynamic_range(pg.skew(DelayCode{c}));
    EXPECT_LT(range.all_errors_below.value(), prev_lo);
    prev_lo = range.all_errors_below.value();
  }
}

TEST(RangeTuner, RejectsEmptyWindow) {
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  EXPECT_THROW((void)tune_for_window(array, pg, 1.0_V, 0.9_V),
               std::logic_error);
}

TEST(RangeTuner, CornerCompensationRecoversTheWindow) {
  // Sec. III-A: a corner-afflicted array, retrimmed via the delay code,
  // should reproduce the TT window far better than the untrimmed code does.
  const auto& model = calib::calibrated().model;
  const analog::FlipFlopTimingModel ff = model.flipflop;
  const PulseGenerator pg{model.pg_config()};

  const auto tt_array = calib::make_paper_array(model);
  const DynamicRange reference = tt_array.dynamic_range(pg.skew(DelayCode{3}));

  for (auto corner : {analog::ProcessCorner::kSlow,
                      analog::ProcessCorner::kFast}) {
    const auto corner_inv = analog::apply_corner(model.inverter, corner);
    const auto corner_array =
        SensorArray::with_loads(corner_inv, ff, model.array_loads);

    const auto untrimmed = corner_array.dynamic_range(pg.skew(DelayCode{3}));
    const double untrimmed_err =
        std::fabs(untrimmed.all_errors_below.value() -
                  reference.all_errors_below.value()) +
        std::fabs(untrimmed.no_errors_above.value() -
                  reference.no_errors_above.value());

    const auto tuned = compensate_corner(corner_array, pg, reference);
    EXPECT_LT(tuned.window_error, untrimmed_err)
        << analog::to_string(corner);
    EXPECT_NE(tuned.code, DelayCode{3}) << analog::to_string(corner);
  }
}

TEST(RangeTuner, SlowCornerNeedsSmallerCode) {
  // Slow silicon → slower INV → thresholds rise → recovering the TT window
  // needs MORE time, i.e. a LARGER skew... but the paper says "the CP-P delay
  // necessary to achieve the same characteristic should be lower" for slow
  // conditions. Both statements are about different knobs: with our
  // formulation (budget = skew - t_setup), slow INV needs a larger budget,
  // hence a larger code. Verify the direction our model implies.
  const auto& model = calib::calibrated().model;
  const PulseGenerator pg{model.pg_config()};
  const auto tt_array = calib::make_paper_array(model);
  const DynamicRange reference = tt_array.dynamic_range(pg.skew(DelayCode{3}));

  const auto slow_inv =
      analog::apply_corner(model.inverter, analog::ProcessCorner::kSlow);
  const auto slow_array =
      SensorArray::with_loads(slow_inv, model.flipflop, model.array_loads);
  const auto tuned = compensate_corner(slow_array, pg, reference);
  EXPECT_GT(tuned.code.value(), DelayCode{3}.value());

  const auto fast_inv =
      analog::apply_corner(model.inverter, analog::ProcessCorner::kFast);
  const auto fast_array =
      SensorArray::with_loads(fast_inv, model.flipflop, model.array_loads);
  const auto fast_tuned = compensate_corner(fast_array, pg, reference);
  EXPECT_LT(fast_tuned.code.value(), DelayCode{3}.value());
}

}  // namespace
}  // namespace psnt::core
