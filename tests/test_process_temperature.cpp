#include <gtest/gtest.h>

#include "analog/process.h"
#include "analog/temperature.h"

namespace psnt::analog {
namespace {

using namespace psnt::literals;

AlphaPowerDelayModel typical() { return AlphaPowerDelayModel{}; }

TEST(Process, CornerNames) {
  EXPECT_EQ(to_string(ProcessCorner::kTypical), "TT");
  EXPECT_EQ(to_string(ProcessCorner::kSlow), "SS");
  EXPECT_EQ(to_string(ProcessCorner::kFast), "FF");
  EXPECT_EQ(to_string(ProcessCorner::kSlowFast), "SF");
  EXPECT_EQ(to_string(ProcessCorner::kFastSlow), "FS");
}

TEST(Process, TypicalCornerIsIdentity) {
  const auto model = typical();
  const auto tt = apply_corner(model, ProcessCorner::kTypical);
  EXPECT_DOUBLE_EQ(tt.delay(1.0_V, 2.0_pF).value(),
                   model.delay(1.0_V, 2.0_pF).value());
}

TEST(Process, SlowCornerIsSlowerFastIsFaster) {
  const auto model = typical();
  const double tt = model.delay(1.0_V, 2.0_pF).value();
  const double ss =
      apply_corner(model, ProcessCorner::kSlow).delay(1.0_V, 2.0_pF).value();
  const double ff =
      apply_corner(model, ProcessCorner::kFast).delay(1.0_V, 2.0_pF).value();
  EXPECT_GT(ss, tt);
  EXPECT_LT(ff, tt);
}

TEST(Process, CrossCornersBetweenExtremes) {
  const auto model = typical();
  const double ss =
      apply_corner(model, ProcessCorner::kSlow).delay(1.0_V, 2.0_pF).value();
  const double ff =
      apply_corner(model, ProcessCorner::kFast).delay(1.0_V, 2.0_pF).value();
  for (auto corner : {ProcessCorner::kSlowFast, ProcessCorner::kFastSlow}) {
    const double d = apply_corner(model, corner).delay(1.0_V, 2.0_pF).value();
    EXPECT_GT(d, ff);
    EXPECT_LT(d, ss);
  }
}

TEST(Process, SlowCornerLowersTheSensorThreshold) {
  // Sec. III-A: "in slow conditions, the INV is slower and thus the VDD-n
  // threshold value is lower"... wait — slower INV means the same budget is
  // consumed at a *higher* VDD-n, so the failure threshold RISES. The paper
  // statement refers to the CP–P retrim needed; the physical check here is
  // that SS shifts thresholds up and FF shifts them down.
  const auto model = typical();
  const Picoseconds budget{120.0};
  const auto tt = model.threshold_supply(2.0_pF, budget);
  const auto ss = apply_corner(model, ProcessCorner::kSlow)
                      .threshold_supply(2.0_pF, budget);
  const auto ff = apply_corner(model, ProcessCorner::kFast)
                      .threshold_supply(2.0_pF, budget);
  ASSERT_TRUE(tt && ss && ff);
  EXPECT_GT(ss->value(), tt->value());
  EXPECT_LT(ff->value(), tt->value());
}

TEST(Process, MismatchIsBoundedAndVaries) {
  const auto model = typical();
  stats::Xoshiro256 rng(42);
  MismatchParams mm;
  double min_d = 1e18, max_d = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto cell = apply_mismatch(model, mm, rng);
    const double d = cell.delay(1.0_V, 2.0_pF).value();
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  const double nominal = model.delay(1.0_V, 2.0_pF).value();
  EXPECT_LT(min_d, nominal);
  EXPECT_GT(max_d, nominal);
  // 2% drive sigma + 5 mV vth sigma stay within ~±15%.
  EXPECT_GT(min_d, nominal * 0.85);
  EXPECT_LT(max_d, nominal * 1.15);
}

TEST(Process, MismatchIsDeterministicPerSeed) {
  const auto model = typical();
  stats::Xoshiro256 a(7), b(7);
  const auto ca = apply_mismatch(model, {}, a);
  const auto cb = apply_mismatch(model, {}, b);
  EXPECT_DOUBLE_EQ(ca.delay(1.0_V, 2.0_pF).value(),
                   cb.delay(1.0_V, 2.0_pF).value());
}

TEST(Temperature, ReferencePointIsIdentity) {
  EXPECT_DOUBLE_EQ(temperature_drive_factor(25.0_degC), 1.0);
  const auto model = typical();
  const auto same = apply_temperature(model, 25.0_degC);
  EXPECT_DOUBLE_EQ(same.delay(1.0_V, 2.0_pF).value(),
                   model.delay(1.0_V, 2.0_pF).value());
}

TEST(Temperature, HotterIsSlowerAtNominalSupply) {
  const auto model = typical();
  const double cold = apply_temperature(model, 0.0_degC)
                          .delay(1.0_V, 2.0_pF).value();
  const double nominal = model.delay(1.0_V, 2.0_pF).value();
  const double hot = apply_temperature(model, 105.0_degC)
                         .delay(1.0_V, 2.0_pF).value();
  EXPECT_LT(cold, nominal);
  EXPECT_GT(hot, nominal);
}

TEST(Temperature, DriveFactorMonotone) {
  double prev = 2.0;
  for (double t = -40.0; t <= 125.0; t += 15.0) {
    const double f = temperature_drive_factor(Celsius{t});
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(Temperature, VtDropPartiallyCompensatesNearThreshold) {
  // At very low supply the Vt reduction with temperature helps, so the
  // hot/cold delay gap narrows relative to nominal supply (inverted
  // temperature dependence trend).
  const auto model = typical();
  const auto hot = apply_temperature(model, 105.0_degC);
  const double ratio_nominal =
      hot.delay(1.0_V, 2.0_pF).value() / model.delay(1.0_V, 2.0_pF).value();
  const double ratio_low =
      hot.delay(0.5_V, 2.0_pF).value() / model.delay(0.5_V, 2.0_pF).value();
  EXPECT_LT(ratio_low, ratio_nominal);
}

}  // namespace
}  // namespace psnt::analog
