#include <gtest/gtest.h>

#include <memory>

#include "calib/fit.h"
#include "scan/die_map.h"
#include "scan/floorplan.h"
#include "scan/scan_chain.h"

namespace psnt::scan {
namespace {

using namespace psnt::literals;

TEST(Floorplan, AddAndQuerySites) {
  Floorplan fp{1000.0, 800.0};
  const auto s0 = fp.add_site("corner", {100.0, 100.0});
  const auto s1 = fp.add_site("center", {500.0, 400.0});
  EXPECT_EQ(fp.site_count(), 2u);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(fp.site(1).name, "center");
  EXPECT_THROW((void)fp.site(5), std::logic_error);
}

TEST(Floorplan, RejectsOutOfDieSites) {
  Floorplan fp{1000.0, 800.0};
  EXPECT_THROW(fp.add_site("oob", {1500.0, 100.0}), std::logic_error);
  EXPECT_THROW(fp.add_site("neg", {-1.0, 0.0}), std::logic_error);
  EXPECT_THROW(Floorplan(0.0, 100.0), std::logic_error);
}

TEST(Floorplan, DistanceEuclidean) {
  Floorplan fp{1000.0, 1000.0};
  fp.add_site("s", {300.0, 400.0});
  EXPECT_DOUBLE_EQ(fp.distance_um(0, {0.0, 0.0}), 500.0);
}

TEST(Floorplan, GridFactoryCentersSites) {
  const auto fp = Floorplan::grid(1000.0, 800.0, 2, 4);
  EXPECT_EQ(fp.site_count(), 8u);
  EXPECT_DOUBLE_EQ(fp.site(0).position.x_um, 125.0);
  EXPECT_DOUBLE_EQ(fp.site(0).position.y_um, 200.0);
  EXPECT_DOUBLE_EQ(fp.site(7).position.x_um, 875.0);
  EXPECT_EQ(fp.site(5).name, "s_r1_c1");
}

struct ChainFixture {
  Floorplan fp = Floorplan::grid(1000.0, 1000.0, 2, 2);
  core::ThermometerConfig config;
  PsnScanChain chain{fp, config};
  // Per-site rails: corner sites droop more.
  std::vector<std::unique_ptr<analog::ConstantRail>> rails;

  explicit ChainFixture(std::vector<double> volts) {
    const auto& model = calib::calibrated().model;
    for (std::size_t i = 0; i < volts.size(); ++i) {
      rails.push_back(std::make_unique<analog::ConstantRail>(Volt{volts[i]}));
      chain.attach_site(static_cast<std::uint32_t>(i),
                        analog::RailPair{rails.back().get(), nullptr},
                        calib::make_paper_thermometer(model, config));
    }
  }
};

TEST(ScanChain, BroadcastMeasuresEverySite) {
  ChainFixture f{{1.00, 0.98, 0.95, 0.90}};
  const auto snapshot = f.chain.broadcast_measure(0.0_ps, core::DelayCode{3});
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot[0].measurement.word.to_string(), "0011111");
  EXPECT_EQ(snapshot[3].measurement.word.to_string(), "0000011");
  // Lower voltage → fewer ones, monotone across the fixture.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_LE(snapshot[i].measurement.word.count_ones(),
              snapshot[i - 1].measurement.word.count_ones());
  }
}

TEST(ScanChain, ShiftOutSerialisesLatchedWords) {
  ChainFixture f{{1.00, 0.90}};
  (void)f.chain.broadcast_measure(0.0_ps, core::DelayCode{3});
  const auto bits = f.chain.shift_out();
  ASSERT_EQ(bits.size(), 14u);
  // Site 0 = 0011111 → bits 0..4 set; site 1 = 0000011 → bits 7,8 set.
  for (std::size_t b = 0; b < 7; ++b) EXPECT_EQ(bits[b], b < 5) << b;
  for (std::size_t b = 0; b < 7; ++b) EXPECT_EQ(bits[7 + b], b < 2) << b;
}

TEST(ScanChain, DeserializeRoundTrips) {
  ChainFixture f{{1.00, 0.95, 0.90}};
  const auto snapshot = f.chain.broadcast_measure(0.0_ps, core::DelayCode{3});
  const auto words = f.chain.deserialize(f.chain.shift_out());
  ASSERT_EQ(words.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(words[i], snapshot[i].measurement.word);
  }
  EXPECT_THROW((void)f.chain.deserialize(std::vector<bool>(5)),
               std::logic_error);
}

TEST(ScanChain, SnapshotCyclesScaleWithSites) {
  ChainFixture two{{1.0, 1.0}};
  EXPECT_EQ(two.chain.snapshot_cycles(), 6u + 2u * 7u);
  ChainFixture four{{1.0, 1.0, 1.0, 1.0}};
  EXPECT_EQ(four.chain.snapshot_cycles(), 6u + 4u * 7u);
}

TEST(ScanChain, ValidatesAttachment) {
  ChainFixture f{{1.0}};
  const auto& model = calib::calibrated().model;
  analog::ConstantRail rail{1.0_V};
  EXPECT_THROW(
      f.chain.attach_site(0, analog::RailPair{&rail, nullptr},
                          calib::make_paper_thermometer(model)),
      std::logic_error);  // duplicate
  EXPECT_THROW(
      f.chain.attach_site(99, analog::RailPair{&rail, nullptr},
                          calib::make_paper_thermometer(model)),
      std::logic_error);  // unknown site
}

TEST(DieMap, WorstAndBestSites) {
  ChainFixture f{{1.00, 0.98, 0.95, 0.90}};
  DieMap map{f.fp, 1.0_V};
  map.ingest(f.chain.broadcast_measure(0.0_ps, core::DelayCode{3}));
  EXPECT_EQ(map.count(), 4u);
  EXPECT_EQ(map.worst_site().site_id, 3u);
  EXPECT_EQ(map.best_site().site_id, 0u);
  EXPECT_GT(map.gradient().value(), 0.05);
}

TEST(DieMap, RenderGridShowsDroop) {
  ChainFixture f{{1.00, 0.98, 0.95, 0.90}};
  DieMap map{f.fp, 1.0_V};
  map.ingest(f.chain.broadcast_measure(0.0_ps, core::DelayCode{3}));
  const std::string art = map.render(2, 2);
  // Two rows of output.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
  EXPECT_THROW((void)map.render(3, 3), std::logic_error);
}

TEST(DieMap, FlagsOutOfRangeSites) {
  ChainFixture f{{1.20, 0.70}};
  DieMap map{f.fp, 1.0_V};
  map.ingest(f.chain.broadcast_measure(0.0_ps, core::DelayCode{3}));
  EXPECT_TRUE(map.sites()[0].above_range);
  EXPECT_TRUE(map.sites()[1].below_range);
  const std::string art = map.render(1, 2);
  EXPECT_NE(art.find("HI"), std::string::npos);
  EXPECT_NE(art.find("LOW"), std::string::npos);
}

}  // namespace
}  // namespace psnt::scan
