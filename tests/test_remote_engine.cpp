// RemoteEngineHandle contract tests: bit-identity of a socket-hop engine
// against its local twin, transport deadlines, and the mapping of transport
// failures onto the grid's existing hung-site resilience path
// (retry/backoff → quarantine → degradation telemetry).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "calib/fit.h"
#include "fleet/fleet.h"
#include "grid/scan_grid.h"
#include "net/remote_engine.h"
#include "scan/floorplan.h"

namespace psnt::net {
namespace {

fleet::FleetConfig small_config() {
  fleet::FleetConfig config;
  config.sites = 4;
  config.samples_per_site = 12;
  config.seed = 91;
  return config;
}

std::shared_ptr<const core::DecodeLadder> shared_ladder() {
  return std::make_shared<core::DecodeLadder>(
      calib::make_paper_decode_ladder(calib::calibrated().model));
}

// Serves one connection from a deterministic site engine on a thread; the
// returned thread joins when the client closes or sends kShutdown.
std::thread serve_site(const fleet::FleetConfig& config, std::uint32_t site,
                       Fd conn) {
  return std::thread([config, site, conn = std::move(conn)]() mutable {
    auto se = fleet::FleetCoordinator::make_site_engine(config, site);
    EngineServer server(std::move(se.engine), std::move(conn), site);
    server.serve();
  });
}

TEST(RemoteEngine, RawBatchIsBitIdenticalToLocalEngine) {
  const auto config = small_config();
  auto [client_end, server_end] = socketpair_stream();
  std::thread server = serve_site(config, 2, std::move(server_end));
  {
    RemoteEngineConfig rc;
    rc.deadline_ms = 5000;
    RemoteEngineHandle remote(std::move(client_end), shared_ladder(), rc);

    auto local = fleet::FleetCoordinator::make_site_engine(config, 2);
    EXPECT_EQ(remote.word_bits(), local.engine->word_bits());

    core::MeasureRequest req;
    req.start = config.start;
    req.code = config.code;
    std::vector<core::RawSample> over_wire;
    std::vector<core::RawSample> in_process;
    remote.measure_raw_batch(req, config.interval, config.samples_per_site,
                             over_wire);
    local.engine->measure_raw_batch(req, config.interval,
                                    config.samples_per_site, in_process);

    ASSERT_EQ(over_wire.size(), in_process.size());
    for (std::size_t k = 0; k < over_wire.size(); ++k) {
      EXPECT_EQ(over_wire[k].word, in_process[k].word) << "sample " << k;
      EXPECT_EQ(over_wire[k].code.value(), in_process[k].code.value());
      EXPECT_EQ(over_wire[k].timestamp.value(),
                in_process[k].timestamp.value());
    }
    EXPECT_EQ(remote.round_trips(), 1u);
    EXPECT_EQ(remote.transport_faults(), 0u);
  }  // handle destruction closes the connection; the server exits on EOF
  server.join();
}

TEST(RemoteEngine, MeasureDecodesLocallyLikeTheLocalEngine) {
  const auto config = small_config();
  auto [client_end, server_end] = socketpair_stream();
  std::thread server = serve_site(config, 1, std::move(server_end));
  {
    RemoteEngineConfig rc;
    rc.deadline_ms = 5000;
    RemoteEngineHandle remote(std::move(client_end), shared_ladder(), rc);
    auto local = fleet::FleetCoordinator::make_site_engine(config, 1);

    for (std::size_t k = 0; k < 4; ++k) {
      core::MeasureRequest req;
      req.start = Picoseconds{config.start.value() +
                              static_cast<double>(k) *
                                  config.interval.value()};
      req.code = config.code;
      const auto remote_m = remote.measure(req);
      const auto local_m = local.engine->measure(req);
      EXPECT_EQ(remote_m.word, local_m.word) << "sample " << k;
      EXPECT_EQ(remote_m.bin.in_range(), local_m.bin.in_range());
      EXPECT_EQ(remote_m.bin.estimate().value(),
                local_m.bin.estimate().value());
    }
  }
  server.join();
}

TEST(RemoteEngine, SilentPeerBlowsTheHandshakeDeadline) {
  auto [client_end, server_end] = socketpair_stream();
  RemoteEngineConfig rc;
  rc.deadline_ms = 60;  // nobody will ever send the hello
  try {
    RemoteEngineHandle remote(std::move(client_end), shared_ladder(), rc);
    FAIL() << "handshake against a silent peer must time out";
  } catch (const TransportError& err) {
    EXPECT_EQ(err.status(), IoStatus::kTimeout);
  }
}

TEST(RemoteEngine, DeadPeerSurfacesAsTransportError) {
  const auto config = small_config();
  auto [client_end, server_end] = socketpair_stream();
  // Hand-deliver a valid hello, then hang up before any request.
  std::vector<std::uint8_t> hello;
  FrameWriter::append_hello(hello, HelloPayload{0, 31});
  ASSERT_EQ(send_all(server_end, hello.data(), hello.size(), 1000),
            IoStatus::kOk);
  server_end.reset();

  RemoteEngineConfig rc;
  rc.deadline_ms = 200;
  RemoteEngineHandle remote(std::move(client_end), shared_ladder(), rc);
  EXPECT_EQ(remote.word_bits(), 31u);

  core::MeasureRequest req;
  req.code = config.code;
  EXPECT_THROW((void)remote.measure(req), TransportError);
  EXPECT_GE(remote.transport_faults(), 1u);
}

// The acceptance gate for the failure contract: a grid of remote sites whose
// server dies degrades through the EXISTING hung-site path — kHungSite trace
// events carrying the transport status, retries, then quarantine — while
// healthy remote sites keep measuring.
TEST(RemoteEngine, GridMapsTransportLossOntoHungSiteQuarantine) {
  const auto config = small_config();
  const auto fp = scan::Floorplan::grid(2000.0, 1000.0, 2, 1);
  const auto ladder = shared_ladder();

  // Site 0 gets a healthy server; site 1's server hangs up after the hello.
  auto [good_client, good_server] = socketpair_stream();
  std::thread server = serve_site(config, 0, std::move(good_server));
  auto [bad_client, bad_server] = socketpair_stream();
  std::vector<std::uint8_t> hello;
  FrameWriter::append_hello(hello, HelloPayload{1, 31});
  ASSERT_EQ(send_all(bad_server, hello.data(), hello.size(), 1000),
            IoStatus::kOk);
  bad_server.reset();

  std::vector<Fd> conns;
  conns.push_back(std::move(good_client));
  conns.push_back(std::move(bad_client));

  grid::ScanGridConfig gc;
  gc.threads = 1;
  gc.samples_per_site = 6;
  gc.code = config.code;
  gc.seed = config.seed;
  gc.resilience.max_retries = 1;
  gc.resilience.quarantine_after = 2;
  gc.resilience.backoff_base_us = 0;
  gc.engine_factory = [&conns, &ladder](std::uint32_t site_id,
                                        const analog::RailPair&,
                                        const core::EngineSiteOptions&) {
    RemoteEngineConfig rc;
    rc.deadline_ms = 200;
    return core::EngineHandle(std::make_unique<RemoteEngineHandle>(
        std::move(conns[site_id]), ladder, rc));
  };

  grid::RunResult result;
  {
    grid::ScanGrid grid{fp, gc, grid::ScanGrid::constant_rails(Volt{1.0})};
    result = grid.run();
  }  // grid teardown closes the remote handles; the good server exits on EOF
  server.join();

  // Healthy remote site: every sample lands.
  EXPECT_FALSE(result.sites[0].quarantined);
  EXPECT_EQ(result.sites[0].lost, 0u);
  for (std::size_t k = 0; k < gc.samples_per_site; ++k) {
    EXPECT_TRUE(result.sites[0].valid[k]);
  }

  // Dead remote site: transport loss walked the hung path to quarantine.
  EXPECT_TRUE(result.sites[1].quarantined);
  EXPECT_GT(result.sites[1].lost, 0u);
  EXPECT_GT(result.sites[1].retries, 0u);
  EXPECT_EQ(result.quarantined_sites, 1u);
  ASSERT_FALSE(result.sites[1].fault_events.empty());
  for (const auto& event : result.sites[1].fault_events) {
    EXPECT_EQ(event.kind, fault::FaultKind::kHungSite);
    // The trace detail distinguishes transport-induced hangs (IoStatus)
    // from injected ones (0).
    EXPECT_NE(event.detail, 0);
  }
}

}  // namespace
}  // namespace psnt::net
