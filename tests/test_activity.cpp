#include "cut/activity.h"

#include <gtest/gtest.h>

namespace psnt::cut {
namespace {

using namespace psnt::literals;

TEST(ActivityTrace, BasicAccessors) {
  ActivityTrace t{1250.0_ps, {0.1, 0.5, 0.9}};
  EXPECT_EQ(t.cycles(), 3u);
  EXPECT_DOUBLE_EQ(t.cycle().value(), 1250.0);
  EXPECT_DOUBLE_EQ(t.duration().value(), 3750.0);
  EXPECT_NEAR(t.mean_activity(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(t.peak_activity(), 0.9);
}

TEST(ActivityTrace, ToCurrentScalesAffine) {
  ActivityTrace t{100.0_ps, {0.0, 1.0}};
  const auto profile = t.to_current(Ampere{0.5}, Ampere{2.0});
  EXPECT_DOUBLE_EQ(profile->at(50.0_ps).value(), 0.5);
  EXPECT_DOUBLE_EQ(profile->at(150.0_ps).value(), 2.5);
}

TEST(ActivityTrace, IdleIsFlat) {
  const auto t = ActivityTrace::idle(100.0_ps, 50, 0.05);
  EXPECT_DOUBLE_EQ(t.mean_activity(), 0.05);
  EXPECT_DOUBLE_EQ(t.peak_activity(), 0.05);
}

TEST(ActivityTrace, StepSwitchesAtCycle) {
  const auto t = ActivityTrace::step(100.0_ps, 10, 4, 0.1, 0.9);
  EXPECT_DOUBLE_EQ(t.factors()[3], 0.1);
  EXPECT_DOUBLE_EQ(t.factors()[4], 0.9);
  EXPECT_DOUBLE_EQ(t.factors()[9], 0.9);
}

TEST(ActivityTrace, BurstDutyCycle) {
  const auto t = ActivityTrace::burst(100.0_ps, 20, 10, 0.3, 0.1, 0.9);
  // Cycles 0-2 high, 3-9 low, repeating.
  EXPECT_DOUBLE_EQ(t.factors()[0], 0.9);
  EXPECT_DOUBLE_EQ(t.factors()[2], 0.9);
  EXPECT_DOUBLE_EQ(t.factors()[3], 0.1);
  EXPECT_DOUBLE_EQ(t.factors()[10], 0.9);
  EXPECT_THROW(ActivityTrace::burst(100.0_ps, 20, 0, 0.3, 0.1, 0.9),
               std::logic_error);
}

TEST(ActivityTrace, RandomWalkStationaryStats) {
  stats::Xoshiro256 rng(42);
  const auto t =
      ActivityTrace::random_walk(100.0_ps, 20000, rng, 0.5, 0.1, 0.9);
  EXPECT_NEAR(t.mean_activity(), 0.5, 0.03);
  // Every sample clamped to [0, 1.5].
  for (double f : t.factors()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.5);
  }
  EXPECT_THROW(
      ActivityTrace::random_walk(100.0_ps, 10, rng, 0.5, 0.1, 1.0),
      std::logic_error);
}

TEST(ActivityTrace, RandomWalkCorrelationSmoothes) {
  stats::Xoshiro256 rng_a(1), rng_b(1);
  const auto smooth =
      ActivityTrace::random_walk(100.0_ps, 5000, rng_a, 0.5, 0.1, 0.95);
  const auto rough =
      ActivityTrace::random_walk(100.0_ps, 5000, rng_b, 0.5, 0.1, 0.0);
  auto mean_abs_step = [](const ActivityTrace& t) {
    double acc = 0.0;
    for (std::size_t i = 1; i < t.cycles(); ++i) {
      acc += std::abs(t.factors()[i] - t.factors()[i - 1]);
    }
    return acc / static_cast<double>(t.cycles() - 1);
  };
  EXPECT_LT(mean_abs_step(smooth), mean_abs_step(rough) * 0.5);
}

TEST(PipelineCut, ProducesPlausibleActivity) {
  PipelineCut cut{PipelineCut::Config{}};
  stats::Xoshiro256 rng(7);
  const auto t = cut.run(20000, rng);
  EXPECT_EQ(t.cycles(), 20000u);
  // Mean between the stall floor and full-pipe activity.
  EXPECT_GT(t.mean_activity(), 0.2);
  EXPECT_LT(t.mean_activity(), 1.1);
  // Peak = clock floor + all five stages busy.
  EXPECT_NEAR(t.peak_activity(), 0.05 + 1.0, 1e-9);
  // Stalls happen: some cycles sit at the miss floor.
  bool saw_stall = false;
  for (double f : t.factors()) {
    if (f == 0.08) saw_stall = true;
  }
  EXPECT_TRUE(saw_stall);
}

TEST(PipelineCut, DeterministicPerSeed) {
  PipelineCut cut{PipelineCut::Config{}};
  stats::Xoshiro256 a(9), b(9);
  EXPECT_EQ(cut.run(500, a).factors(), cut.run(500, b).factors());
}

TEST(PipelineCut, HigherMissRateLowersActivity) {
  PipelineCut::Config hungry;
  hungry.miss_rate = 0.0;
  hungry.mispredict_rate = 0.0;
  PipelineCut::Config starved;
  starved.miss_rate = 0.5;
  stats::Xoshiro256 a(3), b(3);
  const double busy = PipelineCut{hungry}.run(5000, a).mean_activity();
  const double stalled = PipelineCut{starved}.run(5000, b).mean_activity();
  EXPECT_GT(busy, stalled * 1.5);
}

}  // namespace
}  // namespace psnt::cut
