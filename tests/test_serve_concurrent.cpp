// TelemetryStore + QueryEngine under concurrency: one writer thread per
// shard ingesting flat-out while reader threads query continuously. Run
// under TSan in CI (sanitizer matrix) — the snapshot publication and
// the relaxed counter mirrors are exactly the code this must prove clean.
// Also pins down the store's sequential semantics (publication visibility,
// shard partitioning, degradation mirror, grid-drain integration).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/query.h"
#include "serve/store.h"
#include "stats/rng.h"

namespace psnt::serve {
namespace {

StoreConfig make_config(std::size_t sites, std::size_t shards) {
  StoreConfig config;
  config.site_count = sites;
  config.shards = shards;
  config.v_nominal = 1.0;
  config.publish_every = 128;
  config.top_k = 4;
  return config;
}

// The concurrent soak shape shared by the thread-count variants: T writer
// threads (one per shard) + 2 query threads until the writers finish, then
// a final publish and full consistency audit.
void run_concurrent_soak(std::size_t threads) {
  constexpr std::size_t kSites = 16;
  constexpr std::uint64_t kPerSite = 2000;
  TelemetryStore store{make_config(kSites, threads)};

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (std::size_t shard = 0; shard < threads; ++shard) {
    writers.emplace_back([&store, shard, threads] {
      stats::Xoshiro256 rng(99 + shard);
      IngestRecord rec;
      for (std::uint64_t k = 0; k < kPerSite; ++k) {
        for (std::uint32_t site = static_cast<std::uint32_t>(shard);
             site < kSites; site += static_cast<std::uint32_t>(threads)) {
          rec.site = site;
          rec.timestamp = Picoseconds{static_cast<double>(k) * 1000.0};
          rec.volts = 1.0 - 0.001 * site - 0.01 * rng.uniform01();
          rec.latency_us = 0.1 + 0.01 * rng.uniform01();
          rec.in_range = (k % 7) != 0;
          rec.valid = (k % 11) != 0;
          store.ingest(rec);
        }
      }
    });
  }

  // Readers hammer the full query surface until the writers are done; every
  // observation they make must be internally consistent.
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> observations{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&store, &done, &observations] {
      QueryEngine query(store);
      // do-while: at least one full observation even if this thread is
      // scheduled so late the writers already finished (seen once under a
      // heavily loaded parallel ctest run).
      do {
        query.refresh();
        const std::uint64_t published = query.published_seq();
        // Published work never exceeds ingested work...
        EXPECT_LE(published, query.ingested());
        // ...and snapshots are monotone: per-site counts sum to the seq.
        std::uint64_t site_total = 0;
        for (const auto& shard : query.view().shards) {
          if (!shard) continue;
          for (const auto& site : shard->sites) site_total += site.ingested;
        }
        EXPECT_EQ(site_total, published);
        (void)query.voltage_quantile(0.99);
        (void)query.latency_quantile(0.5);
        (void)query.top_droop(4);
        (void)query.degradation();
        observations.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(observations.load(), 0u);

  // Quiesced: final publication covers every ingest.
  store.publish_all();
  QueryEngine query(store);
  const std::uint64_t expected = kPerSite * kSites;
  EXPECT_EQ(store.total_ingested(), expected);
  EXPECT_EQ(query.published_seq(), expected);

  // Valid/invalid accounting: k % 11 == 0 ingests carried no sample.
  const std::uint64_t invalid_per_site = (kPerSite + 10) / 11;
  std::uint64_t total_invalid = 0;
  for (std::uint32_t site = 0; site < kSites; ++site) {
    const auto* snap = query.site(site);
    ASSERT_NE(snap, nullptr) << "site " << site;
    EXPECT_EQ(snap->ingested, kPerSite);
    EXPECT_EQ(snap->invalid, invalid_per_site);
    // seq is the site's ingest ordinal at its last *valid* sample; the
    // final sample (k = 1999) is valid, so it saw the full count.
    ASSERT_TRUE(query.latest(site).has_value());
    EXPECT_EQ(query.latest(site)->seq, kPerSite);
    total_invalid += snap->invalid;
  }

  // Global sketches hold exactly the valid voltage samples / all latencies.
  EXPECT_EQ(query.voltage_stats().count(), expected - total_invalid);
  EXPECT_EQ(query.latency_stats().count(), expected);

  // Deterministic droop floor (0.001·site) makes the exact top-K order
  // site 15, 14, 13, 12 regardless of shard count or interleaving.
  const auto top = query.top_droop(4);
  ASSERT_EQ(top.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(top[i].site, 15u - i) << "rank " << i;
  }
}

TEST(ServeConcurrent, IngestAndQuerySingleShard) { run_concurrent_soak(1); }
TEST(ServeConcurrent, IngestAndQueryTwoShards) { run_concurrent_soak(2); }
TEST(ServeConcurrent, IngestAndQueryEightShards) { run_concurrent_soak(8); }

// Degradation mirror is a cross-thread bag of relaxed atomics.
TEST(ServeConcurrent, DegradationMirrorVisibleAcrossThreads) {
  TelemetryStore store{make_config(4, 1)};
  DegradationStatus status;
  status.retries = 3;
  status.samples_lost = 1;
  std::thread setter([&store, &status] { store.set_degradation(status); });
  setter.join();
  EXPECT_EQ(store.degradation().retries, 3u);
  EXPECT_EQ(store.degradation().samples_lost, 1u);
  EXPECT_EQ(store.snapshot().degradation.samples_lost, 1u);
}

// Snapshot pinning: a view grabbed before further ingest keeps reading its
// own immutable state while the writer publishes past it.
TEST(ServeConcurrent, PinnedSnapshotsSurviveLaterPublishes) {
  TelemetryStore store{make_config(2, 1)};
  IngestRecord rec;
  rec.site = 0;
  rec.volts = 0.9;
  rec.latency_us = 0.1;
  store.ingest(rec);
  store.publish_all();

  QueryEngine pinned(store);
  ASSERT_EQ(pinned.published_seq(), 1u);

  for (int i = 0; i < 1000; ++i) {
    rec.volts = 0.8;
    store.ingest(rec);
  }
  store.publish_all();

  // The pinned engine still sees the old world; a refresh catches up.
  EXPECT_EQ(pinned.published_seq(), 1u);
  EXPECT_DOUBLE_EQ(pinned.latest(0)->volts, 0.9);
  pinned.refresh();
  EXPECT_EQ(pinned.published_seq(), 1001u);
  EXPECT_DOUBLE_EQ(pinned.latest(0)->volts, 0.8);
}

TEST(ServeConcurrent, ShardPartitionIsStable) {
  TelemetryStore store{make_config(8, 3)};
  for (std::uint32_t site = 0; site < 8; ++site) {
    EXPECT_EQ(store.shard_of(site), site % store.config().shards);
  }
}

}  // namespace
}  // namespace psnt::serve
