#include "stats/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "psn/pdn.h"

namespace psnt::stats {
namespace {

using namespace psnt::literals;

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_THROW((void)next_pow2(0), std::logic_error);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft(data), std::logic_error);
}

TEST(Fft, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 64; ++i) {
    data.emplace_back(std::sin(i * 0.3) + 0.2 * i, std::cos(i * 0.7));
  }
  auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 128; ++i) data.emplace_back(std::sin(i * 0.51), 0.0);
  double time_energy = 0.0;
  for (const auto& x : data) time_energy += std::norm(x);
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-8);
}

TEST(Spectrum, PureToneRecoversFrequencyAndAmplitude) {
  // 10 MHz tone, 0.05 amplitude, sampled at 1 GS/s for 4096 samples.
  const double fs = 1e9;
  const double f0 = 10e6;
  std::vector<double> samples(4096);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = 1.0 + 0.05 * std::sin(2.0 * M_PI * f0 *
                                       static_cast<double>(i) / fs);
  }
  const Spectrum spec = amplitude_spectrum(samples, fs);
  const double f_found = dominant_frequency_hz(samples, fs);
  EXPECT_NEAR(f_found, f0, spec.bin_hz * 1.5);
  // Amplitude within 10% (Hann scalloping bounded).
  std::size_t peak = 1;
  for (std::size_t k = 2; k < spec.bins(); ++k) {
    if (spec.amplitude[k] > spec.amplitude[peak]) peak = k;
  }
  EXPECT_NEAR(spec.amplitude[peak], 0.05, 0.008);
}

TEST(Spectrum, DominantOfTwoTones) {
  const double fs = 1e9;
  std::vector<double> samples(2048);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    samples[i] = 0.02 * std::sin(2.0 * M_PI * 5e6 * t) +
                 0.06 * std::sin(2.0 * M_PI * 40e6 * t);
  }
  EXPECT_NEAR(dominant_frequency_hz(samples, fs), 40e6, 1e6);
}

TEST(Spectrum, ValidatesInputs) {
  EXPECT_THROW((void)amplitude_spectrum({1.0, 2.0}, 1e9), std::logic_error);
  EXPECT_THROW((void)amplitude_spectrum({1, 2, 3, 4}, 0.0),
               std::logic_error);
}

TEST(Spectrum, PdnRingFrequencyMatchesAnalytic) {
  // The integration that motivates the module: the solver's damped ring must
  // sit at the analytic resonance.
  psn::LumpedPdnParams p;
  p.v_reg = 1.0_V;
  p.resistance = Ohm{0.004};
  p.inductance = NanoHenry{0.08};
  p.decap = Picofarad{120000.0};
  psn::LumpedPdn pdn{p};
  psn::StepCurrent load{Ampere{1.0}, Ampere{3.0}, 5000.0_ps};
  const psn::Waveform wave = pdn.solve(load, 400000.0_ps, 25.0_ps);

  const double fs = 1.0 / (25.0e-12);  // 25 ps sampling
  const double f_found = dominant_frequency_hz(wave.samples(), fs);
  const double f_expected = pdn.resonant_frequency_ghz() * 1e9;
  EXPECT_NEAR(f_found, f_expected, 0.06 * f_expected);
}

}  // namespace
}  // namespace psnt::stats
