// WindowRing edge cases: lazy rotation, time gaps larger than the ring,
// wraparound reuse of slots, late-sample drops, and last(n) filtering.
#include <gtest/gtest.h>

#include "serve/rollup_window.h"

namespace psnt::serve {
namespace {

WindowConfig small_ring() {
  WindowConfig config;
  config.width = Picoseconds{100.0};
  config.windows = 4;
  config.sketch = SketchConfig{0.01, 1e-3, 64};
  return config;
}

TEST(WindowRing, EpochQuantisation) {
  WindowRing ring{small_ring()};
  EXPECT_EQ(ring.epoch_of(Picoseconds{0.0}), 0u);
  EXPECT_EQ(ring.epoch_of(Picoseconds{99.9}), 0u);
  EXPECT_EQ(ring.epoch_of(Picoseconds{100.0}), 1u);
  EXPECT_EQ(ring.epoch_of(Picoseconds{450.0}), 4u);
  // Negative time clamps to epoch 0 rather than underflowing.
  EXPECT_EQ(ring.epoch_of(Picoseconds{-50.0}), 0u);
}

TEST(WindowRing, SamplesWithinOneEpochShareASlot) {
  WindowRing ring{small_ring()};
  ring.add(Picoseconds{10.0}, 1.0);
  ring.add(Picoseconds{50.0}, 2.0);
  ring.add(Picoseconds{99.0}, 3.0);
  EXPECT_EQ(ring.latest_epoch(), 0u);
  const auto live = ring.last(1);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0]->stats.count(), 3u);
  EXPECT_DOUBLE_EQ(live[0]->stats.mean(), 2.0);
}

TEST(WindowRing, RotationResetsRecycledSlot) {
  WindowRing ring{small_ring()};
  ring.add(Picoseconds{0.0}, 1.0);  // epoch 0 -> slot 0
  // Epoch 4 maps back onto slot 0 (4 % 4); the old window must be gone.
  ring.add(Picoseconds{420.0}, 9.0);
  EXPECT_EQ(ring.latest_epoch(), 4u);
  const auto& slot = ring.slot(0);
  EXPECT_EQ(slot.epoch, 4u);
  EXPECT_EQ(slot.stats.count(), 1u);
  EXPECT_DOUBLE_EQ(slot.stats.mean(), 9.0);
}

TEST(WindowRing, GapLargerThanRingLeavesOnlyStaleSlots) {
  WindowRing ring{small_ring()};
  for (int e = 0; e < 4; ++e) {
    ring.add(Picoseconds{static_cast<double>(e) * 100.0 + 1.0}, 1.0);
  }
  ASSERT_EQ(ring.last(4).size(), 4u);

  // Jump 100 epochs forward: every prior window is now outside the span.
  ring.add(Picoseconds{10400.0}, 5.0);  // epoch 104
  EXPECT_EQ(ring.latest_epoch(), 104u);
  const auto live = ring.last(4);
  ASSERT_EQ(live.size(), 1u);  // stale epochs filtered, not returned
  EXPECT_EQ(live[0]->epoch, 104u);
  EXPECT_DOUBLE_EQ(live[0]->stats.mean(), 5.0);
}

TEST(WindowRing, LateSamplesBeyondRetentionAreDroppedAndCounted) {
  WindowRing ring{small_ring()};
  ring.add(Picoseconds{1000.0}, 1.0);  // epoch 10
  EXPECT_EQ(ring.late_drops(), 0u);

  // Epoch 6 = latest − 4 = retention horizon: too old, must not be merged.
  ring.add(Picoseconds{650.0}, 99.0);
  EXPECT_EQ(ring.late_drops(), 1u);
  for (const auto* slot : ring.last(4)) {
    EXPECT_NE(slot->stats.max(), 99.0);
  }

  // Epoch 7 (latest − 3) is still inside the ring: accepted out of order.
  ring.add(Picoseconds{750.0}, 42.0);
  EXPECT_EQ(ring.late_drops(), 1u);
  const auto live = ring.last(4);
  ASSERT_EQ(live.size(), 2u);  // epochs 10 and 7, newest first
  EXPECT_EQ(live[0]->epoch, 10u);
  EXPECT_EQ(live[1]->epoch, 7u);
  EXPECT_DOUBLE_EQ(live[1]->stats.mean(), 42.0);
}

TEST(WindowRing, WraparoundKeepsExactlyRingDepthWindows) {
  WindowRing ring{small_ring()};
  // 12 consecutive epochs through a 4-deep ring.
  for (int e = 0; e < 12; ++e) {
    ring.add(Picoseconds{static_cast<double>(e) * 100.0 + 50.0},
             static_cast<double>(e));
  }
  EXPECT_EQ(ring.latest_epoch(), 11u);
  const auto live = ring.last(4);
  ASSERT_EQ(live.size(), 4u);
  // Newest first: epochs 11, 10, 9, 8 — each holding exactly its one sample.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(live[i]->epoch, 11u - i);
    EXPECT_EQ(live[i]->stats.count(), 1u);
    EXPECT_DOUBLE_EQ(live[i]->stats.mean(), static_cast<double>(11u - i));
  }
}

TEST(WindowRing, LastNSpansOnlyRequestedEpochs) {
  WindowRing ring{small_ring()};
  for (int e = 0; e < 4; ++e) {
    ring.add(Picoseconds{static_cast<double>(e) * 100.0 + 50.0},
             static_cast<double>(e));
  }
  const auto last2 = ring.last(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0]->epoch, 3u);
  EXPECT_EQ(last2[1]->epoch, 2u);
  EXPECT_TRUE(ring.last(0).empty());
}

TEST(WindowRing, EmptyRing) {
  WindowRing ring{small_ring()};
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.last(4).empty());
  EXPECT_EQ(ring.late_drops(), 0u);
}

}  // namespace
}  // namespace psnt::serve
