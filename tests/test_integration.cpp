// End-to-end integration: PDN noise → rails → thermometer → decoded voltages.
#include <gtest/gtest.h>

#include "analog/process.h"
#include "calib/fit.h"
#include "core/thermometer.h"
#include "cut/activity.h"
#include "psn/pdn.h"

namespace psnt {
namespace {

using namespace psnt::literals;

psn::LumpedPdnParams pdn_params() {
  psn::LumpedPdnParams p;
  p.v_reg = 1.0_V;
  p.resistance = Ohm{0.004};
  p.inductance = NanoHenry{0.08};
  p.decap = Picofarad{120000.0};
  return p;
}

TEST(Integration, ThermometerTracksAPdnDroopWaveform) {
  // A current step excites the PDN; iterated measures across the transient
  // must (a) bracket the true rail voltage at each sampling instant and
  // (b) catch the droop (minimum reading < initial reading).
  psn::LumpedPdn pdn{pdn_params()};
  psn::StepCurrent load{Ampere{1.0}, Ampere{3.0}, 50000.0_ps};
  const psn::Waveform rail_wave = pdn.solve(load, 300000.0_ps, 10.0_ps);
  const analog::SampledRail rail = rail_wave.to_rail();

  auto t = calib::make_paper_thermometer(calib::calibrated().model);
  const auto ms = t.iterate_vdd(analog::RailPair{&rail, nullptr}, 0.0_ps,
                                10000.0_ps, 25, core::DelayCode{3});
  ASSERT_EQ(ms.size(), 25u);

  std::size_t min_count = 7, first_count = ms.front().word.count_ones();
  for (const auto& m : ms) {
    const double truth = rail_wave.value_at(m.timestamp);
    if (m.bin.lo) {
      EXPECT_LE(m.bin.lo->value(), truth + 1e-9);
    }
    if (m.bin.hi) {
      EXPECT_GT(m.bin.hi->value(), truth - 1e-9);
    }
    min_count = std::min(min_count, m.word.count_ones());
  }
  EXPECT_LT(min_count, first_count);  // the droop was observed
}

TEST(Integration, GroundBounceMeasuredByLowSense) {
  auto params = pdn_params();
  params.polarity = psn::RailPolarity::kGroundBounce;
  psn::LumpedPdn gnd_net{params};
  psn::StepCurrent load{Ampere{1.0}, Ampere{6.0}, 20000.0_ps};
  const psn::Waveform bounce = gnd_net.solve(load, 100000.0_ps, 10.0_ps);
  const analog::SampledRail gnd = bounce.to_rail();

  auto t = calib::make_paper_thermometer(calib::calibrated().model);
  // Measure at the worst bounce instant (the LS range reaches ~170 mV).
  const auto worst_t = psn::analyze_droop(bounce, 0.004,
                                          psn::RailPolarity::kGroundBounce)
                           .time_of_worst;
  // Start the transaction so the sense lands near the worst point.
  const Picoseconds start{worst_t.value() - 6.5 * 1250.0};
  const auto m = t.measure_gnd(gnd, start, core::DelayCode{3});
  const double truth = bounce.value_at(m.timestamp);
  if (m.bin.lo) {
    EXPECT_LE(m.bin.lo->value(), truth + 1e-9);
  }
  if (m.bin.hi) {
    EXPECT_GT(m.bin.hi->value(), truth - 1e-9);
  }
}

TEST(Integration, PipelineWorkloadStaysInSensorRange) {
  // A realistic pipeline workload through the PDN lands inside the code-011
  // window most of the time (guardband sizing sanity).
  cut::PipelineCut cut{cut::PipelineCut::Config{}};
  stats::Xoshiro256 rng(2026);
  const auto activity = cut.run(400, rng);
  const auto profile = activity.to_current(Ampere{0.5}, Ampere{3.0});
  psn::LumpedPdn pdn{pdn_params()};
  const psn::Waveform wave =
      pdn.solve(*profile, activity.duration(), 25.0_ps);
  const analog::SampledRail rail = wave.to_rail();

  auto t = calib::make_paper_thermometer(calib::calibrated().model);
  const auto ms = t.iterate_vdd(analog::RailPair{&rail, nullptr}, 0.0_ps,
                                12500.0_ps, 30, core::DelayCode{3});
  std::size_t in_range = 0;
  for (const auto& m : ms) {
    if (m.bin.in_range()) ++in_range;
  }
  EXPECT_GT(in_range, 20u);
}

TEST(Integration, DelayCodeRetuneCapturesOvervoltage) {
  // A rail sitting at 1.10 V saturates code 011 (all ones) but is resolved
  // by code 010 — the paper's "also overvoltages can be measured".
  analog::ConstantRail vdd{1.10_V};
  auto t = calib::make_paper_thermometer(calib::calibrated().model);
  const auto sat = t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps,
                                 core::DelayCode{3});
  EXPECT_TRUE(sat.word.all_ones());
  EXPECT_TRUE(sat.bin.above_range());
  const auto resolved = t.measure_vdd(analog::RailPair{&vdd, nullptr},
                                      100000.0_ps, core::DelayCode{2});
  ASSERT_TRUE(resolved.bin.in_range());
  EXPECT_LE(resolved.bin.lo->value(), 1.10);
  EXPECT_GT(resolved.bin.hi->value(), 1.10);
}

TEST(Integration, SimultaneousVddAndGndMeasurement) {
  // Fig. 6's architecture point: HS and LS observe different quantities of
  // the same event without interfering.
  psn::LumpedPdn vdd_net{pdn_params()};
  auto gnd_params = pdn_params();
  gnd_params.polarity = psn::RailPolarity::kGroundBounce;
  psn::LumpedPdn gnd_net{gnd_params};
  psn::StepCurrent load{Ampere{1.0}, Ampere{4.0}, 30000.0_ps};
  const auto vdd_wave = vdd_net.solve(load, 120000.0_ps, 10.0_ps);
  const auto gnd_wave = gnd_net.solve(load, 120000.0_ps, 10.0_ps);
  const analog::SampledRail vdd = vdd_wave.to_rail();
  const analog::SampledRail gnd = gnd_wave.to_rail();

  auto t = calib::make_paper_thermometer(calib::calibrated().model);
  const auto mv = t.measure_vdd(analog::RailPair{&vdd, &gnd},
                                20000.0_ps, core::DelayCode{3});
  const auto mg = t.measure_gnd(gnd, 20000.0_ps, core::DelayCode{3});
  EXPECT_EQ(mv.target, core::SenseTarget::kVdd);
  EXPECT_EQ(mg.target, core::SenseTarget::kGnd);
  // HS saw vdd - gnd at its sampling instant.
  const double truth =
      vdd_wave.value_at(mv.timestamp) - gnd_wave.value_at(mv.timestamp);
  if (mv.bin.lo) {
    EXPECT_LE(mv.bin.lo->value(), truth + 1e-9);
  }
  if (mv.bin.hi) {
    EXPECT_GT(mv.bin.hi->value(), truth - 1e-9);
  }
}

TEST(Integration, MonteCarloMismatchKeepsThermometerMostlyValid) {
  // Within-die mismatch perturbs each cell; words may bubble but majority
  // encoding keeps the reading close to the mismatch-free one.
  const auto& model = calib::calibrated().model;
  stats::Xoshiro256 rng(77);
  const core::Encoder encoder;
  const Picoseconds skew = model.skew(core::DelayCode{3});
  const auto reference = calib::make_paper_array(model);

  int total_err = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<core::SensorCell> cells;
    for (const Picofarad load : model.array_loads) {
      cells.emplace_back(
          analog::apply_mismatch(model.inverter, {}, rng),
          model.flipflop, load);
    }
    const core::SensorArray noisy{std::move(cells)};
    for (double v : {0.90, 0.95, 1.00, 1.05}) {
      const auto w_ref = reference.measure(Volt{v}, skew);
      const auto w_mc = noisy.measure(Volt{v}, skew);
      total_err += std::abs(
          static_cast<int>(encoder.encode(w_mc).count) -
          static_cast<int>(encoder.encode(w_ref).count));
    }
  }
  // Average error below one LSB.
  EXPECT_LT(static_cast<double>(total_err) / (trials * 4), 1.0);
}

}  // namespace
}  // namespace psnt
