// Wire-format robustness and round-trip property tests (DESIGN.md §15).
//
// The contract under test: arbitrary bytes — truncations, flipped bits,
// foreign versions, oversized lengths, pure garbage — surface as a clean
// WireError and NEVER as a crash or a silently corrupted sample; and every
// well-formed RawSample survives encode→frame→parse→decode bit-for-bit,
// across all 8 DelayCodes and both sense targets.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/wire.h"
#include "stats/rng.h"

namespace psnt::net {
namespace {

core::RawSample make_sample(std::uint32_t site, std::uint32_t index,
                            double t_ps, core::SenseTarget target,
                            std::uint8_t code, std::uint32_t bits,
                            std::size_t width) {
  core::RawSample s;
  s.site_id = site;
  s.sample_index = index;
  s.timestamp = Picoseconds{t_ps};
  s.target = target;
  s.code = core::DelayCode{code};
  s.word = core::ThermoWord{bits, width};
  return s;
}

std::vector<core::RawSample> span_back(const std::vector<std::uint8_t>& bytes,
                                       SpanHeader& header) {
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto frame = parser.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(frame->type, FrameType::kSampleSpan);
  EXPECT_FALSE(decode_span_header(*frame, header).has_value());
  std::size_t n = 0;
  EXPECT_FALSE(span_sample_count(*frame, n).has_value());
  std::vector<core::RawSample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(decode_span_sample(*frame, i, out[i]).has_value());
  }
  return out;
}

void expect_samples_equal(const core::RawSample& a, const core::RawSample& b) {
  EXPECT_EQ(a.site_id, b.site_id);
  EXPECT_EQ(a.sample_index, b.sample_index);
  EXPECT_EQ(a.timestamp.value(), b.timestamp.value());
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.code.value(), b.code.value());
  EXPECT_EQ(a.word, b.word);
}

// --- round-trip properties -------------------------------------------------

TEST(WireFormat, SampleRoundTripsAcrossAllDelayCodes) {
  // Every code, both targets, widths from empty to full, random word bits
  // masked to the width: the full RawSample value space shape.
  stats::Xoshiro256 rng(7);
  for (std::uint8_t code = 0; code < core::DelayCode::kCount; ++code) {
    for (const auto target : {core::SenseTarget::kVdd,
                              core::SenseTarget::kGnd}) {
      for (std::size_t width : {std::size_t{1}, std::size_t{7},
                                std::size_t{17}, std::size_t{32}}) {
        const std::uint32_t mask =
            width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
        const auto bits = static_cast<std::uint32_t>(rng.next()) & mask;
        const auto sample =
            make_sample(rng.next() & 0xffffu, rng.next() & 0xffffu,
                        static_cast<double>(rng.next() % 1000000),
                        target, code, bits, width);
        std::uint8_t wire[kSampleWireBytes];
        encode_sample(sample, wire);
        core::RawSample back;
        ASSERT_FALSE(decode_sample(wire, back).has_value())
            << "code " << int(code) << " width " << width;
        expect_samples_equal(sample, back);
      }
    }
  }
}

TEST(WireFormat, SpanFrameRoundTripsWithHeader) {
  std::vector<core::RawSample> samples;
  for (std::uint32_t k = 0; k < 37; ++k) {
    samples.push_back(make_sample(4, k, 1000.0 * k, core::SenseTarget::kVdd,
                                  static_cast<std::uint8_t>(k % 8),
                                  (1u << (k % 20)) - 1u, 20));
  }
  std::vector<std::uint8_t> bytes;
  const SpanHeader sent{/*worker=*/9, /*seq=*/41, /*send_ns=*/123456789ull};
  FrameWriter::append_sample_span(bytes, sent, samples.data(), samples.size());

  SpanHeader header;
  const auto back = span_back(bytes, header);
  EXPECT_EQ(header.worker, sent.worker);
  EXPECT_EQ(header.seq, sent.seq);
  EXPECT_EQ(header.send_ns, sent.send_ns);
  ASSERT_EQ(back.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_samples_equal(samples[i], back[i]);
  }
}

TEST(WireFormat, ParserReassemblesByteAtATimeFeeds) {
  // Stream fragmentation is arbitrary; framing must not care. Feed three
  // batched frames one byte at a time.
  std::vector<std::uint8_t> bytes;
  FrameWriter::append_hello(bytes, HelloPayload{3, 31});
  const auto sample = make_sample(1, 2, 3.0, core::SenseTarget::kGnd, 5,
                                  0x7fu, 8);
  FrameWriter::append_sample_span(bytes, SpanHeader{1, 0, 99}, &sample, 1);
  FrameWriter::append_done(bytes, DonePayload{1, 64});

  FrameParser parser;
  std::vector<FrameType> seen;
  for (const std::uint8_t byte : bytes) {
    parser.feed(&byte, 1);
    while (auto frame = parser.next()) seen.push_back(frame->type);
    ASSERT_FALSE(parser.failed());
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], FrameType::kHello);
  EXPECT_EQ(seen[1], FrameType::kSampleSpan);
  EXPECT_EQ(seen[2], FrameType::kDone);
  EXPECT_EQ(parser.bytes_pending(), 0u);
}

TEST(WireFormat, ControlPayloadsRoundTrip) {
  std::vector<std::uint8_t> bytes;
  FrameWriter::append_assign(bytes, AssignPayload{2, 128, 512});
  MeasureReqPayload req;
  req.start_ps = 1.5e6;
  req.interval_ps = 10000.0;
  req.count = 96;
  req.target = 1;
  req.has_code = 1;
  req.code = 6;
  FrameWriter::append_measure_req(bytes, req);
  FrameWriter::append_shutdown(bytes);

  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());

  auto f1 = parser.next();
  ASSERT_TRUE(f1 && f1->type == FrameType::kAssign);
  AssignPayload assign;
  ASSERT_FALSE(decode_assign(*f1, assign).has_value());
  EXPECT_EQ(assign.worker, 2u);
  EXPECT_EQ(assign.first_sample, 128u);
  EXPECT_EQ(assign.sample_count, 512u);

  auto f2 = parser.next();
  ASSERT_TRUE(f2 && f2->type == FrameType::kMeasureReq);
  MeasureReqPayload back;
  ASSERT_FALSE(decode_measure_req(*f2, back).has_value());
  EXPECT_EQ(back.start_ps, req.start_ps);
  EXPECT_EQ(back.interval_ps, req.interval_ps);
  EXPECT_EQ(back.count, req.count);
  EXPECT_EQ(back.target, req.target);
  EXPECT_EQ(back.has_code, 1);
  EXPECT_EQ(back.code, 6);

  auto f3 = parser.next();
  ASSERT_TRUE(f3 && f3->type == FrameType::kShutdown);
  EXPECT_EQ(f3->payload_size, 0u);
}

// --- robustness: every corruption is a clean error -------------------------

std::vector<std::uint8_t> one_span_frame() {
  std::vector<std::uint8_t> bytes;
  const auto sample = make_sample(3, 9, 5000.0, core::SenseTarget::kVdd, 4,
                                  0x1fu, 12);
  FrameWriter::append_sample_span(bytes, SpanHeader{0, 0, 7}, &sample, 1);
  return bytes;
}

TEST(WireFormat, TruncationIsPendingBytesNeverAFrame) {
  const auto bytes = one_span_frame();
  // Cut at every possible point: never a frame, never an error, always the
  // benign "peer died mid-frame" signature (bytes pending at EOF).
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    FrameParser parser;
    parser.feed(bytes.data(), cut);
    EXPECT_FALSE(parser.next().has_value()) << "cut " << cut;
    EXPECT_FALSE(parser.failed()) << "cut " << cut;
    EXPECT_GT(parser.bytes_pending(), 0u) << "cut " << cut;
  }
}

TEST(WireFormat, FlippedPayloadBitFailsCrc) {
  auto bytes = one_span_frame();
  bytes[kFrameHeaderBytes + 3] ^= 0x10;  // flip one payload bit
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(*parser.error(), WireError::kBadCrc);
}

TEST(WireFormat, ForeignVersionIsRejected) {
  auto bytes = one_span_frame();
  bytes[4] = kWireVersion + 1;  // version byte follows the magic
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(*parser.error(), WireError::kBadVersion);
}

TEST(WireFormat, UnknownFrameTypeIsRejected) {
  auto bytes = one_span_frame();
  bytes[5] = 0xee;  // type byte
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(*parser.error(), WireError::kBadType);
}

TEST(WireFormat, GarbageBytesAreRejectedAtTheMagic) {
  stats::Xoshiro256 rng(1234);
  std::vector<std::uint8_t> garbage(256);
  for (auto& byte : garbage) {
    byte = static_cast<std::uint8_t>(rng.next());
  }
  garbage[0] = 0x00;  // guarantee the magic cannot match
  FrameParser parser;
  parser.feed(garbage.data(), garbage.size());
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(*parser.error(), WireError::kBadMagic);
}

TEST(WireFormat, OversizedLengthIsBoundedNotAllocated) {
  // Hand-craft a header announcing a 64 MiB payload: must fail kBadLength
  // without waiting for (or allocating) the bytes.
  std::uint8_t header[kFrameHeaderBytes] = {};
  header[0] = static_cast<std::uint8_t>(kWireMagic);
  header[1] = static_cast<std::uint8_t>(kWireMagic >> 8);
  header[2] = static_cast<std::uint8_t>(kWireMagic >> 16);
  header[3] = static_cast<std::uint8_t>(kWireMagic >> 24);
  header[4] = kWireVersion;
  header[5] = static_cast<std::uint8_t>(FrameType::kSampleSpan);
  const std::uint32_t huge = 64u << 20;
  header[8] = static_cast<std::uint8_t>(huge);
  header[9] = static_cast<std::uint8_t>(huge >> 8);
  header[10] = static_cast<std::uint8_t>(huge >> 16);
  header[11] = static_cast<std::uint8_t>(huge >> 24);
  FrameParser parser;
  parser.feed(header, sizeof(header));
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(*parser.error(), WireError::kBadLength);
}

TEST(WireFormat, CrcCleanButMalformedSampleIsBadPayload) {
  // A frame whose CRC is valid but whose record violates the RawSample
  // layout (target byte = 7): the codec must reject it, not publish it.
  auto bytes = one_span_frame();
  const std::size_t target_off = kFrameHeaderBytes + kSpanHeaderBytes + 16;
  bytes[target_off] = 7;
  // Recompute the CRC so the corruption survives the frame check.
  const std::uint32_t crc =
      crc32(bytes.data() + kFrameHeaderBytes, bytes.size() - kFrameHeaderBytes);
  bytes[12] = static_cast<std::uint8_t>(crc);
  bytes[13] = static_cast<std::uint8_t>(crc >> 8);
  bytes[14] = static_cast<std::uint8_t>(crc >> 16);
  bytes[15] = static_cast<std::uint8_t>(crc >> 24);

  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());  // framing is fine; the record is not
  core::RawSample out;
  const auto err = decode_span_sample(*frame, 0, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, WireError::kBadPayload);
}

TEST(WireFormat, PhantomWordBitsAboveWidthAreRejected) {
  const auto sample = make_sample(0, 0, 0.0, core::SenseTarget::kVdd, 0,
                                  0x3u, 8);
  std::uint8_t wire[kSampleWireBytes];
  encode_sample(sample, wire);
  wire[18] = 1;  // shrink the width below the set bits
  core::RawSample out;
  const auto err = decode_sample(wire, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, WireError::kBadPayload);
}

TEST(WireFormat, ErrorsAreStickyUntilReset) {
  auto bad = one_span_frame();
  bad[4] = 0x42;  // bad version
  const auto good = one_span_frame();

  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  EXPECT_FALSE(parser.next().has_value());
  ASSERT_TRUE(parser.failed());

  // A broken stream has no resync point: good bytes after the error change
  // nothing until reset().
  parser.feed(good.data(), good.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.failed());

  parser.reset();
  EXPECT_FALSE(parser.failed());
  parser.feed(good.data(), good.size());
  EXPECT_TRUE(parser.next().has_value());
}

TEST(WireFormat, TypedDecodersRejectWrongSizes) {
  // A kHello payload handed to every other typed decoder: all must answer
  // kBadPayload (no reinterpretation of undersized buffers).
  std::vector<std::uint8_t> bytes;
  FrameWriter::append_hello(bytes, HelloPayload{1, 16});
  FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());

  AssignPayload assign;
  DonePayload done;
  MeasureReqPayload req;
  SpanHeader span;
  std::size_t n = 0;
  EXPECT_EQ(decode_assign(*frame, assign), WireError::kBadPayload);
  EXPECT_EQ(decode_done(*frame, done), WireError::kBadPayload);
  EXPECT_EQ(decode_measure_req(*frame, req), WireError::kBadPayload);
  EXPECT_EQ(decode_span_header(*frame, span), WireError::kBadPayload);
  EXPECT_EQ(span_sample_count(*frame, n), WireError::kBadPayload);
}

}  // namespace
}  // namespace psnt::net
