#include "cut/scenarios.h"

#include <gtest/gtest.h>

namespace psnt::cut {
namespace {

using namespace psnt::literals;

TEST(Scenarios, AllKindsEnumerateAndName) {
  const auto kinds = all_scenarios();
  EXPECT_EQ(kinds.size(), 5u);
  for (const auto k : kinds) {
    EXPECT_STRNE(to_string(k), "?");
  }
}

TEST(Scenarios, QuietIsPureIrDrop) {
  const auto s = make_scenario(ScenarioKind::kQuiet);
  EXPECT_NEAR(s.vdd.value_at(0.0_ps), 0.996, 1e-6);  // 1.0 - 4 mΩ × 1 A
  EXPECT_LT(s.vdd.peak_to_peak(), 1e-6);
  EXPECT_NEAR(s.gnd.value_at(0.0_ps), 0.004, 1e-6);
  EXPECT_LT(s.vdd_metrics.worst_deviation, 1e-6);
}

TEST(Scenarios, FirstDroopHasTheDeepestSingleEvent) {
  const auto s = make_scenario(ScenarioKind::kFirstDroop);
  EXPECT_GT(s.vdd_metrics.worst_deviation, 0.03);
  // Trough shortly after the 50 ns step.
  EXPECT_GT(s.vdd_metrics.time_of_worst.value(), 50000.0);
  EXPECT_LT(s.vdd_metrics.time_of_worst.value(), 70000.0);
  // Ground bounces up as the supply droops.
  EXPECT_GT(s.gnd_metrics.worst, 0.008);
}

TEST(Scenarios, ResonantRippleBeatsTheQuietBaseline) {
  const auto quiet = make_scenario(ScenarioKind::kQuiet);
  const auto ripple = make_scenario(ScenarioKind::kResonantRipple);
  EXPECT_GT(ripple.vdd.rms_ripple(), 10.0 * quiet.vdd.rms_ripple() + 1e-6);
  EXPECT_GT(ripple.vdd_metrics.worst_deviation, 0.02);
}

TEST(Scenarios, ClockGatingProducesRepeatingBursts) {
  ScenarioConfig config;
  config.horizon = Picoseconds{600000.0};
  const auto s = make_scenario(ScenarioKind::kClockGating, config);
  // Multiple droop events: the waveform crosses its mean many times.
  const double mean = s.vdd.mean();
  std::size_t crossings = 0;
  const auto& samples = s.vdd.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if ((samples[i - 1] < mean) != (samples[i] < mean)) ++crossings;
  }
  EXPECT_GT(crossings, 4u);
}

TEST(Scenarios, PipelineWorkloadDeterministicPerSeed) {
  ScenarioConfig config;
  config.seed = 7;
  const auto a = make_scenario(ScenarioKind::kPipelineWorkload, config);
  const auto b = make_scenario(ScenarioKind::kPipelineWorkload, config);
  EXPECT_EQ(a.vdd.samples(), b.vdd.samples());
  config.seed = 8;
  const auto c = make_scenario(ScenarioKind::kPipelineWorkload, config);
  EXPECT_NE(a.vdd.samples(), c.vdd.samples());
}

TEST(Scenarios, DescriptionsAreFilledIn) {
  for (const auto k : all_scenarios()) {
    ScenarioConfig config;
    config.horizon = Picoseconds{100000.0};
    const auto s = make_scenario(k, config);
    EXPECT_FALSE(s.description.empty()) << to_string(k);
    EXPECT_EQ(s.kind, k);
  }
}

TEST(Scenarios, VddAndGndShareTheGrid) {
  const auto s = make_scenario(ScenarioKind::kFirstDroop);
  EXPECT_EQ(s.vdd.size(), s.gnd.size());
  EXPECT_DOUBLE_EQ(s.vdd.period().value(), s.gnd.period().value());
}

}  // namespace
}  // namespace psnt::cut
