#include "psn/pdn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psnt::psn {
namespace {

using namespace psnt::literals;

LumpedPdnParams typical_params() {
  LumpedPdnParams p;
  p.v_reg = 1.0_V;
  p.resistance = Ohm{0.004};
  p.inductance = NanoHenry{0.08};
  p.decap = Picofarad{120000.0};  // 120 nF
  return p;
}

TEST(LumpedPdn, AnalyticProperties) {
  LumpedPdn pdn{typical_params()};
  // f = 1/(2*pi*sqrt(LC)) with L=0.08nH, C=120nF → ~51.4 MHz.
  EXPECT_NEAR(pdn.resonant_frequency_ghz(), 0.05137, 1e-4);
  // Z0 = sqrt(L/C) ≈ 25.8 mΩ.
  EXPECT_NEAR(pdn.characteristic_impedance_ohm(), 0.02582, 1e-4);
  EXPECT_NEAR(pdn.quality_factor(), 0.02582 / 0.004, 0.1);
}

TEST(LumpedPdn, SteadyStateIsIrDrop) {
  LumpedPdn pdn{typical_params()};
  ConstantCurrent load{Ampere{5.0}};
  const Waveform v = pdn.solve(load, 2000.0_ps, 10.0_ps);
  // v = V_reg - R*I = 1.0 - 0.02 everywhere (starts in steady state).
  EXPECT_NEAR(v.value_at(0.0_ps), 0.98, 1e-9);
  EXPECT_NEAR(v.value_at(1500.0_ps), 0.98, 1e-6);
  EXPECT_LT(v.peak_to_peak(), 1e-6);
}

TEST(LumpedPdn, StepProducesFirstDroopNearAnalytic) {
  LumpedPdn pdn{typical_params()};
  // 2 A step at t=1 ns.
  StepCurrent load{Ampere{1.0}, Ampere{3.0}, 1000.0_ps};
  const Waveform v = pdn.solve(load, 40000.0_ps, 10.0_ps);
  const DroopMetrics m =
      analyze_droop(v, 1.0 - 0.004 * 1.0, RailPolarity::kSupplyDroop);
  // Lightly damped: droop ≈ ΔI * Z0 ≈ 51.6 mV below the *new* DC level...
  // with Q≈6.5 the first trough loses a bit to damping; accept 35–55 mV
  // beyond the new IR level (1 - 0.012 = 0.988).
  const double new_dc = 1.0 - 0.004 * 3.0;
  const double droop_past_dc = new_dc - m.worst;
  EXPECT_GT(droop_past_dc, 0.035);
  EXPECT_LT(droop_past_dc, 0.055);
  // Trough roughly a quarter resonance period after the step.
  const double quarter_ps = 0.25 / pdn.resonant_frequency_ghz() * 1000.0;
  EXPECT_NEAR(m.time_of_worst.value(), 1000.0 + quarter_ps,
              0.35 * quarter_ps);
  // Ringback overshoots the DC level.
  EXPECT_GT(m.overshoot, 0.0);
}

TEST(LumpedPdn, RingPeriodMatchesResonantFrequency) {
  LumpedPdn pdn{typical_params()};
  StepCurrent load{Ampere{1.0}, Ampere{3.0}, 1000.0_ps};
  const Waveform v = pdn.solve(load, 60000.0_ps, 10.0_ps);
  // Find the first two minima after the step by scanning.
  const auto& s = v.samples();
  std::vector<double> minima_t;
  for (std::size_t i = 120; i + 1 < s.size() && minima_t.size() < 2; ++i) {
    if (s[i] < s[i - 1] && s[i] <= s[i + 1]) {
      minima_t.push_back(static_cast<double>(i) * 10.0);
      i += 200;  // skip past this trough
    }
  }
  ASSERT_EQ(minima_t.size(), 2u);
  const double period_ps = minima_t[1] - minima_t[0];
  const double expected_ps = 1000.0 / pdn.resonant_frequency_ghz();
  EXPECT_NEAR(period_ps, expected_ps, 0.05 * expected_ps);
}

TEST(LumpedPdn, ResonantExcitationBeatsOffResonance) {
  LumpedPdn pdn{typical_params()};
  const double f_res = pdn.resonant_frequency_ghz();
  auto ripple_at = [&](double freq_ghz) {
    SquareWaveCurrent load{Ampere{1.0}, Ampere{3.0},
                           Picoseconds{1000.0 / freq_ghz}, 0.5};
    const Waveform v = pdn.solve(load, 200000.0_ps, 20.0_ps);
    // Measure in the settled second half.
    std::vector<double> tail(v.samples().begin() + 5000, v.samples().end());
    const Waveform settled{0.0_ps, 20.0_ps, std::move(tail)};
    return settled.peak_to_peak();
  };
  const double at_res = ripple_at(f_res);
  EXPECT_GT(at_res, ripple_at(f_res / 4.0) * 1.5);
  EXPECT_GT(at_res, ripple_at(f_res * 4.0) * 1.5);
}

TEST(LumpedPdn, GroundBounceMirrorsSupplyDroop) {
  LumpedPdnParams p = typical_params();
  p.polarity = RailPolarity::kGroundBounce;
  LumpedPdn gnd{p};
  StepCurrent load{Ampere{1.0}, Ampere{3.0}, 1000.0_ps};
  const Waveform bounce = gnd.solve(load, 40000.0_ps, 10.0_ps);
  // Steady state at R*I = 4 mV, bouncing UP after the step.
  EXPECT_NEAR(bounce.value_at(0.0_ps), 0.004, 1e-9);
  EXPECT_GT(bounce.max(), 0.012);  // beyond the new DC of 12 mV
  const DroopMetrics m = analyze_droop(bounce, 0.004,
                                       RailPolarity::kGroundBounce);
  EXPECT_GT(m.worst, 0.012);
  EXPECT_GT(m.worst_deviation, 0.008);
}

TEST(LumpedPdn, RejectsBadParams) {
  LumpedPdnParams p = typical_params();
  p.decap = Picofarad{0.0};
  EXPECT_THROW(LumpedPdn{p}, std::logic_error);
  LumpedPdn ok{typical_params()};
  ConstantCurrent load{Ampere{1.0}};
  EXPECT_THROW((void)ok.solve(load, 0.0_ps), std::logic_error);
}

TEST(LadderPdn, UniformSplitsTotals) {
  const auto p = LadderPdnParams::uniform(4, 1.0_V, Ohm{0.004},
                                          NanoHenry{0.08},
                                          Picofarad{120000.0});
  EXPECT_EQ(p.segments(), 4u);
  EXPECT_NEAR(p.resistance[0].value(), 0.001, 1e-12);
  EXPECT_NEAR(p.inductance[0].value(), 0.02, 1e-12);
  EXPECT_NEAR(p.decap[0].value(), 30000.0, 1e-9);
  EXPECT_TRUE(p.valid());
}

TEST(LadderPdn, SteadyStateMatchesTotalIrDrop) {
  const auto params = LadderPdnParams::uniform(
      4, 1.0_V, Ohm{0.004}, NanoHenry{0.08}, Picofarad{120000.0});
  LadderPdn pdn{params};
  ConstantCurrent load{Ampere{5.0}};
  const Waveform v = pdn.solve(load, 2000.0_ps, 10.0_ps);
  EXPECT_NEAR(v.value_at(0.0_ps), 0.98, 1e-9);
  EXPECT_LT(v.peak_to_peak(), 1e-6);
}

TEST(LadderPdn, StepDroopComparableToLumped) {
  // Same totals → same DC and similar (not identical) first droop.
  LumpedPdn lumped{typical_params()};
  LadderPdn ladder{LadderPdnParams::uniform(6, 1.0_V, Ohm{0.004},
                                            NanoHenry{0.08},
                                            Picofarad{120000.0})};
  StepCurrent load{Ampere{1.0}, Ampere{3.0}, 1000.0_ps};
  // The ring decays with 2L/R = 40 ns; run long enough for both to settle.
  const auto vl = lumped.solve(load, 200000.0_ps, 10.0_ps);
  const auto vd = ladder.solve(load, 200000.0_ps, 10.0_ps);
  EXPECT_NEAR(vd.min(), vl.min(), 0.015);
  // Both ring around the same new DC level; compare the mean over the tail
  // (instantaneous ring phases differ between the two topologies).
  auto tail_mean = [](const Waveform& w) {
    double acc = 0.0;
    const std::size_t n = w.size() / 4;
    for (std::size_t i = w.size() - n; i < w.size(); ++i) {
      acc += w.samples()[i];
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_NEAR(tail_mean(vd), tail_mean(vl), 0.01);
}

TEST(LadderPdn, RejectsMalformedParams) {
  LadderPdnParams p;
  p.resistance = {Ohm{0.001}};
  p.inductance = {};  // size mismatch
  p.decap = {Picofarad{1000.0}};
  EXPECT_FALSE(p.valid());
  EXPECT_THROW(LadderPdn{p}, std::logic_error);
}

TEST(DroopMetrics, SupplyFields) {
  Waveform v{0.0_ps, 10.0_ps, {1.0, 0.95, 0.92, 0.97, 1.01}};
  const DroopMetrics m = analyze_droop(v, 1.0, RailPolarity::kSupplyDroop);
  EXPECT_DOUBLE_EQ(m.worst, 0.92);
  EXPECT_DOUBLE_EQ(m.worst_deviation, 0.08);
  EXPECT_DOUBLE_EQ(m.time_of_worst.value(), 20.0);
  EXPECT_NEAR(m.overshoot, 0.01, 1e-12);
}

}  // namespace
}  // namespace psnt::psn
