#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace psnt::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Scheduler, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, 75);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(1, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 9);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::logic_error);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace psnt::sim
