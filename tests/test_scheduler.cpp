#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace psnt::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Scheduler, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, 75);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(1, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 9);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::logic_error);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, FarFutureEventsParkInOverflowThenMigrate) {
  Scheduler s;
  const SimTime horizon = Scheduler::wheel_horizon();
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(0); });
  // Beyond the wheel window: must land in the overflow heap, not a wrapped
  // bucket (which would corrupt ordering).
  s.schedule_at(horizon + 5, [&] { order.push_back(1); });
  s.schedule_at(3 * horizon + 7, [&] { order.push_back(2); });
  EXPECT_EQ(s.overflow_pending(), 2u);
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.now(), 3 * horizon + 7);
  EXPECT_EQ(s.overflow_pending(), 0u);
}

TEST(Scheduler, RunUntilExactlyAtHorizonBoundary) {
  Scheduler s;
  const SimTime horizon = Scheduler::wheel_horizon();
  int count = 0;
  s.schedule_at(horizon, [&] { ++count; });      // first overflow time
  s.schedule_at(horizon - 1, [&] { ++count; });  // last wheel time
  s.run_until(horizon);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), horizon);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ExecutedEventsCountsEveryDispatch) {
  Scheduler s;
  EXPECT_EQ(s.executed_events(), 0u);
  for (int i = 0; i < 7; ++i) s.schedule_at(10 * i, [] {});
  s.run_until(30);
  EXPECT_EQ(s.executed_events(), 4u);  // t = 0, 10, 20, 30
  s.run_all();
  EXPECT_EQ(s.executed_events(), 7u);
  // run_until past the last event must not invent dispatches.
  s.run_until(s.now() + 1000);
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Scheduler, StressOrderMatchesStableSortReference) {
  // Random times straddling the wheel/overflow boundary, with heavy
  // same-timestamp collisions: execution order must equal a stable sort by
  // time (FIFO within a timestamp).
  Scheduler s;
  std::mt19937 rng{12345};
  const SimTime horizon = Scheduler::wheel_horizon();
  std::uniform_int_distribution<SimTime> dist{0, 2 * horizon / 97};
  std::vector<std::pair<SimTime, int>> expected;
  std::vector<int> actual;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = dist(rng) * 97;  // coarse grid forces collisions
    expected.emplace_back(t, i);
    s.schedule_at(t, [&actual, i] { actual.push_back(i); });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  s.run_all();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i].second) << "position " << i;
  }
}

TEST(Scheduler, ArenaIsRecycledInSteadyState) {
  Scheduler s;
  // Bounded in-flight events: after the first chunk is carved the free list
  // satisfies every later schedule, so allocation_count stops growing.
  for (int i = 0; i < 50; ++i) s.schedule_at(i, [] {});
  s.run_all();
  const std::uint64_t after_warmup = s.allocation_count();
  EXPECT_GE(after_warmup, 1u);
  SimTime t = s.now();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) s.schedule_at(++t, [] {});
    s.run_all();
  }
  EXPECT_EQ(s.allocation_count(), after_warmup);
  EXPECT_EQ(s.heap_callbacks(), 0u);
}

TEST(Scheduler, OversizedCallablesSpillToHeapAndAreCounted) {
  Scheduler s;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > the 48-byte buffer
  big[15] = 42;
  std::uint64_t seen = 0;
  s.schedule_at(1, [big, &seen] { seen = big[15]; });
  EXPECT_EQ(s.heap_callbacks(), 1u);
  s.schedule_at(2, [&seen] { ++seen; });  // small: stays inline
  EXPECT_EQ(s.heap_callbacks(), 1u);
  s.run_all();
  EXPECT_EQ(seen, 43u);
}

}  // namespace
}  // namespace psnt::sim
