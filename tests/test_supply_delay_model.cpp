#include "analog/supply_delay_model.h"

#include <gtest/gtest.h>

#include <tuple>

namespace psnt::analog {
namespace {

using namespace psnt::literals;

AlphaPowerDelayModel typical() {
  AlphaPowerParams p;
  p.drive_k_pf_per_ps = 0.035;
  p.alpha = 1.35;
  p.v_threshold = 0.32_V;
  p.c_intrinsic = 0.15_pF;
  return AlphaPowerDelayModel{p};
}

TEST(AlphaPower, DelayIsPositiveAndFinite) {
  const auto model = typical();
  const Picoseconds d = model.delay(1.0_V, 2.0_pF);
  EXPECT_GT(d.value(), 0.0);
  EXPECT_LT(d.value(), 1000.0);
}

TEST(AlphaPower, BelowThresholdNeverSwitches) {
  const auto model = typical();
  EXPECT_GT(model.delay(0.30_V, 1.0_pF).value(), 1e9);
  EXPECT_GT(model.delay(0.32_V, 1.0_pF).value(), 1e9);
}

TEST(AlphaPower, RejectsNegativeLoad) {
  const auto model = typical();
  EXPECT_THROW((void)model.delay(1.0_V, Picofarad{-0.1}), std::logic_error);
}

TEST(AlphaPower, RejectsUnphysicalParams) {
  AlphaPowerParams p;
  p.drive_k_pf_per_ps = -1.0;
  EXPECT_THROW(AlphaPowerDelayModel{p}, std::logic_error);
  p = AlphaPowerParams{};
  p.alpha = 5.0;
  EXPECT_THROW(AlphaPowerDelayModel{p}, std::logic_error);
  p = AlphaPowerParams{};
  p.v_threshold = Volt{1.5};
  EXPECT_THROW(AlphaPowerDelayModel{p}, std::logic_error);
}

// The sensor principle: delay strictly decreases with supply...
class DelayVsSupply : public ::testing::TestWithParam<double> {};

TEST_P(DelayVsSupply, MonotoneDecreasingInVoltage) {
  const auto model = typical();
  const Picofarad load{GetParam()};
  double prev = 1e18;
  for (double v = 0.75; v <= 1.30; v += 0.01) {
    const double d = model.delay(Volt{v}, load).value();
    EXPECT_LT(d, prev) << "at V=" << v << " C=" << load.value();
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, DelayVsSupply,
                         ::testing::Values(0.0, 0.5, 1.0, 1.7, 2.0, 2.3, 4.0));

// ...and strictly increases with load (Fig. 4's x-axis).
class DelayVsLoad : public ::testing::TestWithParam<double> {};

TEST_P(DelayVsLoad, MonotoneIncreasingInLoad) {
  const auto model = typical();
  const Volt v{GetParam()};
  double prev = 0.0;
  for (double c = 0.0; c <= 4.0; c += 0.1) {
    const double d = model.delay(v, Picofarad{c}).value();
    EXPECT_GT(d, prev) << "at C=" << c;
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, DelayVsLoad,
                         ::testing::Values(0.85, 0.90, 1.00, 1.10, 1.20));

TEST(AlphaPower, DelayLinearInLoadExactly) {
  // t = (C + Cint) * g(V): exactly affine in C for fixed V.
  const auto model = typical();
  const double d1 = model.delay(1.0_V, 1.0_pF).value();
  const double d2 = model.delay(1.0_V, 2.0_pF).value();
  const double d3 = model.delay(1.0_V, 3.0_pF).value();
  EXPECT_NEAR(d3 - d2, d2 - d1, 1e-9);
}

TEST(AlphaPower, NearLinearInVoltageWithinPaperWindow) {
  // Within 0.9–1.1 V the curve deviates from its secant by < 2% (the paper's
  // premise that DS delay tracks VDD-n linearly in the range of interest).
  const auto model = typical();
  const Picofarad c = 2.0_pF;
  const double d_lo = model.delay(0.9_V, c).value();
  const double d_hi = model.delay(1.1_V, c).value();
  for (double v = 0.9; v <= 1.1; v += 0.01) {
    const double linear = d_lo + (d_hi - d_lo) * (v - 0.9) / 0.2;
    const double actual = model.delay(Volt{v}, c).value();
    EXPECT_NEAR(actual, linear, 0.02 * actual) << "at V=" << v;
  }
}

TEST(AlphaPower, ThresholdSupplyInvertsDelay) {
  const auto model = typical();
  const Picoseconds budget{120.0};
  const auto thr = model.threshold_supply(2.0_pF, budget);
  ASSERT_TRUE(thr.has_value());
  EXPECT_NEAR(model.delay(*thr, 2.0_pF).value(), budget.value(), 1e-6);
}

TEST(AlphaPower, ThresholdGrowsWithLoad) {
  const auto model = typical();
  const Picoseconds budget{120.0};
  double prev = 0.0;
  for (double c = 1.0; c <= 3.0; c += 0.25) {
    const auto thr = model.threshold_supply(Picofarad{c}, budget);
    ASSERT_TRUE(thr.has_value()) << "C=" << c;
    EXPECT_GT(thr->value(), prev);
    prev = thr->value();
  }
}

TEST(AlphaPower, ThresholdFallsWithBudget) {
  const auto model = typical();
  double prev = 10.0;
  for (double b = 100.0; b <= 200.0; b += 20.0) {
    const auto thr = model.threshold_supply(2.0_pF, Picoseconds{b});
    ASSERT_TRUE(thr.has_value());
    EXPECT_LT(thr->value(), prev);
    prev = thr->value();
  }
}

TEST(AlphaPower, ThresholdUnreachableCases) {
  const auto model = typical();
  // Budget so tight even v_max fails.
  EXPECT_FALSE(model.threshold_supply(4.0_pF, Picoseconds{1.0}));
  EXPECT_FALSE(model.threshold_supply(2.0_pF, Picoseconds{-5.0}));
}

TEST(AlphaPower, HugeBudgetPinsThresholdNearDeviceVt) {
  // With an enormous budget the cell only fails when the inverter stops
  // switching at all, i.e. just above the device threshold voltage.
  const auto model = typical();
  const auto thr = model.threshold_supply(0.1_pF, Picoseconds{1e6});
  ASSERT_TRUE(thr.has_value());
  EXPECT_NEAR(thr->value(), model.params().v_threshold.value(), 0.01);
}

TEST(AlphaPower, LoadForBudgetInvertsDelay) {
  const auto model = typical();
  const auto load = model.load_for_budget(0.95_V, Picoseconds{130.0});
  ASSERT_TRUE(load.has_value());
  EXPECT_NEAR(model.delay(0.95_V, *load).value(), 130.0, 1e-9);
}

TEST(AlphaPower, LoadForBudgetRoundTripsThreshold) {
  const auto model = typical();
  const Picoseconds budget{140.0};
  const auto load = model.load_for_budget(0.93_V, budget);
  ASSERT_TRUE(load.has_value());
  const auto thr = model.threshold_supply(*load, budget);
  ASSERT_TRUE(thr.has_value());
  EXPECT_NEAR(thr->value(), 0.93, 1e-6);
}

TEST(AlphaPower, LoadForBudgetImpossibleCases) {
  const auto model = typical();
  // Budget smaller than the intrinsic-cap delay → impossible.
  EXPECT_FALSE(model.load_for_budget(1.0_V, Picoseconds{0.1}));
  EXPECT_FALSE(model.load_for_budget(0.2_V, Picoseconds{100.0}));
}

TEST(AlphaPower, SlopeIsNegative) {
  const auto model = typical();
  EXPECT_LT(model.delay_slope_ps_per_volt(1.0_V, 2.0_pF), 0.0);
}

TEST(AlphaPower, DriveScalingSpeedsUp) {
  const auto model = typical();
  const auto faster = model.with_drive_scaled(1.2);
  EXPECT_LT(faster.delay(1.0_V, 2.0_pF).value(),
            model.delay(1.0_V, 2.0_pF).value());
  EXPECT_THROW((void)model.with_drive_scaled(0.0), std::logic_error);
}

TEST(AlphaPower, VthShiftSlowsDown) {
  const auto model = typical();
  const auto slower = model.with_vth_shifted(Volt{0.05});
  EXPECT_GT(slower.delay(1.0_V, 2.0_pF).value(),
            model.delay(1.0_V, 2.0_pF).value());
}

}  // namespace
}  // namespace psnt::analog
