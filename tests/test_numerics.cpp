// Regression, root finding and Nelder–Mead.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/optimize.h"
#include "stats/regression.h"
#include "stats/root_find.h"

namespace psnt::stats {
namespace {

TEST(Regression, RecoversExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.max_abs_residual, 0.0, 1e-12);
}

TEST(Regression, NoisyLineStillHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(3.0 * i * 0.1 + 0.5 + 0.01 * std::sin(i * 1.3));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Regression, PredictUsesFit) {
  std::vector<double> xs{0, 1};
  std::vector<double> ys{1, 3};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.predict(2.0), 5.0, 1e-12);
}

TEST(Regression, RejectsDegenerateInputs) {
  std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_line(one, one), std::logic_error);
  std::vector<double> xs{2.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW((void)fit_line(xs, ys), std::logic_error);
}

TEST(RootFind, BisectFindsSqrt2) {
  const auto root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-9);
}

TEST(RootFind, BrentFindsSqrt2Fast) {
  const auto root = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-10);
}

TEST(RootFind, BrentHandlesTranscendental) {
  // x = cos(x) near 0.739085
  const auto root =
      brent([](double x) { return x - std::cos(x); }, 0.0, 1.5);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 0.7390851332, 1e-8);
}

TEST(RootFind, InvalidBracketReturnsNullopt) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0));
  EXPECT_FALSE(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0));
  EXPECT_FALSE(bisect([](double x) { return x; }, 2.0, 1.0));
}

TEST(RootFind, EndpointRootReturnedDirectly) {
  const auto root = brent([](double x) { return x - 1.0; }, 1.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_DOUBLE_EQ(*root, 1.0);
}

TEST(NelderMead, MinimisesQuadraticBowl) {
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
  EXPECT_NEAR(result.fx, 0.0, 1e-8);
}

TEST(NelderMead, MinimisesRosenbrock) {
  NelderMeadOptions options;
  options.max_iterations = 10000;
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, RespectsPenaltyConstraints) {
  // Minimum of (x-2)^2 subject to x<=1 via penalty → lands at the boundary.
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        if (x[0] > 1.0) return 1e9;
        return (x[0] - 2.0) * (x[0] - 2.0);
      },
      {0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  // Quartic bowl: f-spread convergence can halt with the simplex symmetric
  // about the minimum, so assert on f rather than a tight x tolerance.
  const auto result = nelder_mead(
      [](const std::vector<double>& x) { return std::pow(x[0] - 5.0, 4.0); },
      {0.0});
  EXPECT_NEAR(result.x[0], 5.0, 0.1);
  EXPECT_LT(result.fx, 1e-4);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(
      (void)nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      std::logic_error);
}

}  // namespace
}  // namespace psnt::stats
