#include "core/sense_kernel.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/sensor_array.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

SensorArray make_uniform_array() {
  return SensorArray::linear(analog::AlphaPowerDelayModel{},
                             analog::FlipFlopTimingModel{}, 1.6_pF, 0.12_pF,
                             7);
}

// Cells with per-cell inverter variation (a mismatch study): the kernel must
// detect non-uniform drive and fall back to the reference path.
SensorArray make_mismatched_array() {
  std::vector<SensorCell> cells;
  for (std::size_t i = 0; i < 7; ++i) {
    analog::AlphaPowerParams p;
    p.drive_k_pf_per_ps = 0.030 + 0.001 * static_cast<double>(i);
    cells.emplace_back(analog::AlphaPowerDelayModel{p},
                       analog::FlipFlopTimingModel{},
                       Picofarad{1.6 + 0.12 * static_cast<double>(i)});
  }
  return SensorArray{std::move(cells)};
}

Picoseconds skew_for(DelayCode code) {
  // An arbitrary monotone code→skew map spanning the useful range; the
  // kernel must match the array for any skew, not just pulse-gen outputs.
  return Picoseconds{120.0 + 12.0 * static_cast<double>(code.value())};
}

void expect_same_bin(const VoltageBin& a, const VoltageBin& b) {
  ASSERT_EQ(a.lo.has_value(), b.lo.has_value());
  ASSERT_EQ(a.hi.has_value(), b.hi.has_value());
  if (a.lo) {
    EXPECT_EQ(a.lo->value(), b.lo->value());
  }
  if (a.hi) {
    EXPECT_EQ(a.hi->value(), b.hi->value());
  }
}

TEST(SenseKernel, MeasureBitIdenticalAcrossCodesAndVoltages) {
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  EXPECT_TRUE(kernel.uniform());
  std::size_t fast_covered = 0;
  std::size_t swept = 0;
  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const auto skew = skew_for(DelayCode{c});
    for (double v = 0.30; v <= 1.60; v += 0.005) {
      ++swept;
      if (!kernel.fast_path(Volt{v})) continue;  // caller-gated hand-off
      ++fast_covered;
      const ThermoWord ref = arr.measure(Volt{v}, skew);
      const ThermoWord fast = kernel.measure(arr, Volt{v}, skew);
      ASSERT_EQ(fast, ref) << "code=" << int(c) << " V=" << v;
    }
  }
  // The guard must only exclude the at/below-threshold sliver, not gut the
  // fast path: the sweep starts at 0.30 V against a ~0.32 V threshold.
  EXPECT_GT(fast_covered, swept * 9 / 10);
}

TEST(SenseKernel, MeasureMatchesAtAndBelowInverterThreshold) {
  // At/below Vt the overdrive guard reports no fast path — callers must
  // take the reference implementation (which returns the all-errors word).
  // Calling measure() there anyway is a contract violation and throws.
  const auto arr = make_uniform_array();
  const BatchedSenseKernel kernel{arr};
  const auto skew = skew_for(DelayCode{3});
  for (const double v : {0.0, 0.1, 0.32, 0.32 + 5e-10}) {
    EXPECT_FALSE(kernel.fast_path(Volt{v})) << "V=" << v;
    EXPECT_THROW((void)kernel.measure(arr, Volt{v}, skew), std::logic_error)
        << "V=" << v;
    EXPECT_EQ(arr.measure(Volt{v}, skew).count_ones(), 0u) << "V=" << v;
  }
  // Just above the guard margin the fast path reopens and stays identical.
  const double v_on = 0.32 + 2e-9;
  ASSERT_TRUE(kernel.fast_path(Volt{v_on}));
  EXPECT_EQ(kernel.measure(arr, Volt{v_on}, skew),
            arr.measure(Volt{v_on}, skew));
}

TEST(SenseKernel, DecodeFamilyMatchesArray) {
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const DelayCode code{c};
    const auto skew = skew_for(code);
    const auto range_ref = arr.dynamic_range(skew);
    const auto range = kernel.dynamic_range(arr, code, skew);
    EXPECT_EQ(range.all_errors_below.value(),
              range_ref.all_errors_below.value());
    EXPECT_EQ(range.no_errors_above.value(),
              range_ref.no_errors_above.value());
    for (double v = 0.70; v <= 1.40; v += 0.01) {
      const ThermoWord w = arr.measure(Volt{v}, skew);
      expect_same_bin(kernel.decode(arr, w, code, skew), arr.decode(w, skew));
      expect_same_bin(kernel.decode_gnd(arr, w, code, skew, Volt{1.0}),
                      arr.decode_gnd(w, skew, Volt{1.0}));
    }
  }
}

TEST(SenseKernel, LadderCacheSolvesOncePerCode) {
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  EXPECT_EQ(kernel.ladder_solves(), 0u);
  const DelayCode code{2};
  const auto skew = skew_for(code);
  const auto& first = kernel.sorted_thresholds(arr, code, skew);
  EXPECT_EQ(first, arr.sorted_thresholds(skew));
  EXPECT_EQ(kernel.ladder_solves(), 1u);
  for (int i = 0; i < 50; ++i) {
    (void)kernel.decode(arr, arr.measure(Volt{1.0}, skew), code, skew);
  }
  EXPECT_EQ(kernel.ladder_solves(), 1u);  // cache hit every time
  (void)kernel.sorted_thresholds(arr, DelayCode{5}, skew_for(DelayCode{5}));
  EXPECT_EQ(kernel.ladder_solves(), 2u);  // distinct code → one more solve
  // Same code at a new skew (range retuning) invalidates that entry only.
  (void)kernel.sorted_thresholds(arr, code, Picoseconds{200.0});
  EXPECT_EQ(kernel.ladder_solves(), 3u);
}

TEST(SenseKernel, MismatchedArrayNeverOffersTheFastPath) {
  // Per-cell inverter variation: the kernel must report no fast path for
  // every voltage (callers then take the reference array path, which the
  // engine layer does in BehavioralEngine::sense), and refuse a forced
  // fast-path measure outright.
  const auto arr = make_mismatched_array();
  BatchedSenseKernel kernel{arr};
  EXPECT_FALSE(kernel.uniform());
  for (double v = 0.30; v <= 1.60; v += 0.01) {
    ASSERT_FALSE(kernel.fast_path(Volt{v})) << "V=" << v;
  }
  EXPECT_THROW((void)kernel.measure(arr, Volt{1.0}, skew_for(DelayCode{3})),
               std::logic_error);
  // decode/dynamic_range stay available on mismatched arrays (the ladder
  // cache is drive-independent); only the word fast path is gated.
  const auto skew = skew_for(DelayCode{2});
  const ThermoWord w = arr.measure(Volt{1.0}, skew);
  expect_same_bin(kernel.decode(arr, w, DelayCode{2}, skew),
                  arr.decode(w, skew));
}

}  // namespace
}  // namespace psnt::core
