// TopKDroop vs. an exact reference: random monotone update streams, K larger
// than the site count, ties, and negative (overshoot) droops.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "serve/topk.h"
#include "stats/rng.h"

namespace psnt::serve {
namespace {

// Exact reference: max per site, sort droop desc / site asc, cut to K.
std::vector<TopKDroop::Entry> exact_topk(const std::vector<double>& worst,
                                         std::size_t k) {
  std::vector<TopKDroop::Entry> entries;
  for (std::uint32_t s = 0; s < worst.size(); ++s) {
    if (worst[s] != -std::numeric_limits<double>::infinity()) {
      entries.push_back({s, worst[s]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const TopKDroop::Entry& a, const TopKDroop::Entry& b) {
              if (a.droop != b.droop) return a.droop > b.droop;
              return a.site < b.site;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

void expect_same(const std::vector<TopKDroop::Entry>& got,
                 const std::vector<TopKDroop::Entry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].site, want[i].site) << "rank " << i;
    EXPECT_DOUBLE_EQ(got[i].droop, want[i].droop) << "rank " << i;
  }
}

TEST(TopKDroop, MatchesExactSortUnderRandomUpdates) {
  constexpr std::size_t kSiteCount = 64;
  constexpr std::size_t kK = 8;
  stats::Xoshiro256 rng(1234);

  TopKDroop tracker(kSiteCount, kK);
  std::vector<double> worst(kSiteCount,
                            -std::numeric_limits<double>::infinity());
  for (int step = 0; step < 20000; ++step) {
    const auto site = static_cast<std::uint32_t>(rng.uniform_index(kSiteCount));
    const double droop = rng.normal(0.01 * site, 0.05);  // high sites worse
    tracker.update(site, droop);
    worst[site] = std::max(worst[site], droop);
    if (step % 977 == 0) {
      expect_same(tracker.top(), exact_topk(worst, kK));
    }
  }
  expect_same(tracker.top(), exact_topk(worst, kK));
  // Per-site worsts are tracked exactly for every site, not just the top K.
  for (std::uint32_t s = 0; s < kSiteCount; ++s) {
    EXPECT_DOUBLE_EQ(tracker.worst(s), worst[s]);
  }
}

TEST(TopKDroop, KLargerThanSiteCountReturnsAllSeenSites) {
  TopKDroop tracker(4, 16);
  tracker.update(2, 0.3);
  tracker.update(0, 0.1);
  const auto top = tracker.top();
  ASSERT_EQ(top.size(), 2u);  // unseen sites are absent, not zero-filled
  EXPECT_EQ(top[0].site, 2u);
  EXPECT_EQ(top[1].site, 0u);
}

TEST(TopKDroop, TiesBreakTowardLowerSiteId) {
  TopKDroop tracker(8, 3);
  tracker.update(5, 0.2);
  tracker.update(1, 0.2);
  tracker.update(3, 0.2);
  tracker.update(7, 0.2);
  const auto top = tracker.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].site, 1u);
  EXPECT_EQ(top[1].site, 3u);
  EXPECT_EQ(top[2].site, 5u);
}

TEST(TopKDroop, NegativeDroopNeverDisplacesWorseSites) {
  TopKDroop tracker(4, 2);
  tracker.update(0, 0.5);
  tracker.update(1, 0.4);
  tracker.update(2, -0.1);  // overshoot: valid value, loses to both
  auto top = tracker.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].site, 0u);
  EXPECT_EQ(top[1].site, 1u);

  // But it enters while there is room.
  TopKDroop roomy(4, 4);
  roomy.update(2, -0.1);
  ASSERT_EQ(roomy.top().size(), 1u);
  EXPECT_EQ(roomy.top()[0].site, 2u);
}

TEST(TopKDroop, EvictedSiteCanReenterByWorsening) {
  TopKDroop tracker(4, 2);
  tracker.update(0, 0.5);
  tracker.update(1, 0.4);
  tracker.update(2, 0.3);  // never makes the heap
  tracker.update(2, 0.6);  // monotone worsening pushes it past site 1
  const auto top = tracker.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].site, 2u);
  EXPECT_EQ(top[1].site, 0u);
}

TEST(TopKDroop, StaleUpdateIsIgnored) {
  TopKDroop tracker(4, 2);
  tracker.update(0, 0.5);
  tracker.update(0, 0.2);  // better reading: per-site max must not regress
  EXPECT_DOUBLE_EQ(tracker.worst(0), 0.5);
  EXPECT_DOUBLE_EQ(tracker.top()[0].droop, 0.5);
}

TEST(TopKDroop, Reset) {
  TopKDroop tracker(4, 2);
  tracker.update(0, 0.5);
  tracker.reset();
  EXPECT_TRUE(tracker.top().empty());
  EXPECT_EQ(tracker.worst(0), -std::numeric_limits<double>::infinity());
  tracker.update(1, 0.1);
  ASSERT_EQ(tracker.top().size(), 1u);
  EXPECT_EQ(tracker.top()[0].site, 1u);
}

}  // namespace
}  // namespace psnt::serve
