// Corner-path coverage for the simulator utilities: SOP synthesis constants,
// reduction trees, VCD identifier encoding at scale, initial settling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/probe.h"
#include "sim/synth.h"
#include "sim/vcd.h"

namespace psnt::sim {
namespace {

using namespace psnt::literals;

TEST(Synth, ReduceAndSingleNetPassesThrough) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& out = reduce_and(sim, "t", {&a}, 10.0_ps);
  EXPECT_EQ(&out, &a);
}

TEST(Synth, ReduceAndComputesConjunction) {
  Simulator sim;
  std::vector<Net*> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(&sim.net("in" + std::to_string(i)));
  }
  Net& y = reduce_and(sim, "and5", ins, 5.0_ps);
  for (auto* n : ins) sim.drive(*n, 0.0_ps, Logic::L1);
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L1);
  sim.drive(*ins[3], 100.0_ps, Logic::L0);
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L0);
}

TEST(Synth, ReduceOrComputesDisjunction) {
  Simulator sim;
  std::vector<Net*> ins;
  for (int i = 0; i < 7; ++i) {
    ins.push_back(&sim.net("in" + std::to_string(i)));
  }
  Net& y = reduce_or(sim, "or7", ins, 5.0_ps);
  for (auto* n : ins) sim.drive(*n, 0.0_ps, Logic::L0);
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L0);
  sim.drive(*ins[6], 100.0_ps, Logic::L1);
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L1);
}

TEST(Synth, SopConstantsTieTheOutput) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  SopSynthesizer synth(sim, "s", {&a, &b});
  Net& zero = synth.synthesize("f0", {});
  Net& one = synth.synthesize("f1", {0, 1, 2, 3});
  sim.drive(a, 0.0_ps, Logic::L0);
  sim.drive(b, 0.0_ps, Logic::L1);
  sim.run_all();
  EXPECT_EQ(zero.value(), Logic::L0);
  EXPECT_EQ(one.value(), Logic::L1);
}

TEST(Synth, SopXorOfTwoInputs) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  SopSynthesizer synth(sim, "s", {&a, &b});
  // XOR on-set: minterms 01 and 10 → indices 1 and 2.
  Net& y = synth.synthesize("xor", {1, 2});
  const struct {
    Logic a, b, y;
  } rows[] = {{Logic::L0, Logic::L0, Logic::L0},
              {Logic::L1, Logic::L0, Logic::L1},
              {Logic::L0, Logic::L1, Logic::L1},
              {Logic::L1, Logic::L1, Logic::L0}};
  double t = 10.0;
  for (const auto& row : rows) {
    sim.drive(a, Picoseconds{t}, row.a);
    sim.drive(b, Picoseconds{t}, row.b);
    sim.run_until(Picoseconds{t + 500.0});
    EXPECT_EQ(y.value(), row.y) << to_char(row.a) << to_char(row.b);
    t += 1000.0;
  }
  EXPECT_GT(synth.gates_built(), 0u);
}

TEST(Synth, SopRejectsBadMinterm) {
  Simulator sim;
  Net& a = sim.net("a");
  SopSynthesizer synth(sim, "s", {&a});
  EXPECT_THROW((void)synth.synthesize("bad", {5}), std::logic_error);
}

TEST(Synth, ExhaustiveThreeInputFunctions) {
  // Property: SOP synthesis realises every 3-input function correctly on
  // every input vector. (256 functions × 8 vectors would be slow with one
  // simulator each; sample a spread of nontrivial functions.)
  for (std::uint32_t truth : {0x96u, 0xE8u, 0x01u, 0xFEu, 0x3Cu, 0xA5u}) {
    Simulator sim;
    Net& a = sim.net("a");
    Net& b = sim.net("b");
    Net& c = sim.net("c");
    SopSynthesizer synth(sim, "s", {&a, &b, &c});
    std::vector<std::uint32_t> minterms;
    for (std::uint32_t m = 0; m < 8; ++m) {
      if ((truth >> m) & 1u) minterms.push_back(m);
    }
    Net& y = synth.synthesize("f", minterms);
    double t = 10.0;
    for (std::uint32_t v = 0; v < 8; ++v) {
      sim.drive(a, Picoseconds{t}, from_bool(v & 1u));
      sim.drive(b, Picoseconds{t}, from_bool((v >> 1) & 1u));
      sim.drive(c, Picoseconds{t}, from_bool((v >> 2) & 1u));
      sim.run_until(Picoseconds{t + 600.0});
      EXPECT_EQ(y.value(), from_bool((truth >> v) & 1u))
          << "truth=0x" << std::hex << truth << " vector=" << v;
      t += 1000.0;
    }
  }
}

TEST(Vcd, ManyNetsGetDistinctIds) {
  const std::string path = "/tmp/psnt_vcd_many.vcd";
  {
    Simulator sim;
    VcdWriter vcd(path);
    // > 94 nets exercises the multi-character identifier encoding.
    for (int i = 0; i < 120; ++i) {
      vcd.trace(sim.net("n" + std::to_string(i)));
    }
    vcd.begin_dump();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  // All 120 $var declarations present with unique codes.
  std::size_t vars = 0;
  std::size_t pos = 0;
  while ((pos = text.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    pos += 1;
  }
  EXPECT_EQ(vars, 120u);
  std::remove(path.c_str());
}

TEST(Gates, SettleInitialPropagatesWithoutInputEvent) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  auto& gate = sim.add<InvGate>("u", a, y, 10.0_ps);
  a.force(sim.scheduler(), Logic::L0);  // no listener existed at force time?
  // force() does notify; but settle_initial covers elaboration-order cases.
  gate.settle_initial();
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L1);
}

TEST(Net, CancelPendingSuppressesScheduledLevel) {
  Simulator sim;
  Net& n = sim.net("n");
  n.force(sim.scheduler(), Logic::L0);
  n.schedule_level(sim.scheduler(), from_ps(50.0), Logic::L1);
  n.cancel_pending();
  sim.run_all();
  EXPECT_EQ(n.value(), Logic::L0);
}

TEST(Net, EarlierConflictingScheduleWins) {
  Simulator sim;
  Net& n = sim.net("n");
  n.force(sim.scheduler(), Logic::L0);
  n.schedule_level(sim.scheduler(), from_ps(100.0), Logic::L1);
  // A later request for an earlier, different... same value at an earlier
  // time must reschedule to the earlier time.
  n.schedule_level(sim.scheduler(), from_ps(40.0), Logic::L1);
  sim.run_until(50.0_ps);
  EXPECT_EQ(n.value(), Logic::L1);
  EXPECT_DOUBLE_EQ(to_ps(n.last_change()).value(), 40.0);
}

}  // namespace
}  // namespace psnt::sim
