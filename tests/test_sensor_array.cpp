#include "core/sensor_array.h"

#include <gtest/gtest.h>

namespace psnt::core {
namespace {

using namespace psnt::literals;

SensorArray make_array() {
  return SensorArray::linear(analog::AlphaPowerDelayModel{},
                             analog::FlipFlopTimingModel{}, 1.6_pF, 0.12_pF,
                             7);
}

constexpr Picoseconds kSkew{160.0};

TEST(SensorArray, LinearFactoryBuildsAscendingLoads) {
  const auto arr = make_array();
  EXPECT_EQ(arr.bits(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(arr.cell(i).c_load().value(), 1.6 + 0.12 * i, 1e-12);
  }
}

TEST(SensorArray, ThresholdsAscend) {
  const auto thr = make_array().thresholds(kSkew);
  ASSERT_EQ(thr.size(), 7u);
  for (std::size_t i = 1; i < 7; ++i) EXPECT_GT(thr[i], thr[i - 1]);
}

TEST(SensorArray, MeasureIsThermometerAcrossSweep) {
  const auto arr = make_array();
  // Every measured word across the sweep must be a valid thermometer code
  // and its count must be monotone non-decreasing in voltage.
  std::size_t prev = 0;
  for (double v = 0.7; v <= 1.4; v += 0.005) {
    const ThermoWord w = arr.measure(Volt{v}, kSkew);
    EXPECT_TRUE(w.is_valid_thermometer()) << "V=" << v << " " << w.to_string();
    EXPECT_GE(w.count_ones(), prev) << "V=" << v;
    prev = w.count_ones();
  }
  EXPECT_EQ(prev, 7u);  // reaches all-correct at the top
}

TEST(SensorArray, WordMatchesThresholdCount) {
  const auto arr = make_array();
  const auto thr = arr.thresholds(kSkew);
  for (double v = 0.75; v <= 1.35; v += 0.01) {
    std::size_t expected = 0;
    while (expected < thr.size() && Volt{v} >= thr[expected]) ++expected;
    EXPECT_EQ(arr.measure(Volt{v}, kSkew).count_ones(), expected)
        << "V=" << v;
  }
}

TEST(SensorArray, DynamicRangeSpansThresholds) {
  const auto arr = make_array();
  const auto range = arr.dynamic_range(kSkew);
  const auto thr = arr.thresholds(kSkew);
  EXPECT_DOUBLE_EQ(range.all_errors_below.value(), thr.front().value());
  EXPECT_DOUBLE_EQ(range.no_errors_above.value(), thr.back().value());
  EXPECT_GT(range.span().value(), 0.0);
}

TEST(SensorArray, DecodeMidScaleBin) {
  const auto arr = make_array();
  const auto thr = arr.thresholds(kSkew);
  const auto word = ThermoWord::of_count(3, 7);
  const VoltageBin bin = arr.decode(word, kSkew);
  ASSERT_TRUE(bin.in_range());
  EXPECT_DOUBLE_EQ(bin.lo->value(), thr[2].value());
  EXPECT_DOUBLE_EQ(bin.hi->value(), thr[3].value());
  EXPECT_GT(bin.estimate().value(), bin.lo->value());
  EXPECT_LT(bin.estimate().value(), bin.hi->value());
}

TEST(SensorArray, DecodeEndsAreOpen) {
  const auto arr = make_array();
  const auto lo = arr.decode(ThermoWord::of_count(0, 7), kSkew);
  EXPECT_TRUE(lo.below_range());
  EXPECT_TRUE(lo.hi.has_value());
  const auto hi = arr.decode(ThermoWord::of_count(7, 7), kSkew);
  EXPECT_TRUE(hi.above_range());
  EXPECT_TRUE(hi.lo.has_value());
}

TEST(SensorArray, DecodeCorrectsBubblesFirst) {
  const auto arr = make_array();
  const auto clean = arr.decode(ThermoWord::from_string("0011111"), kSkew);
  const auto bubbled = arr.decode(ThermoWord::from_string("0101111"), kSkew);
  EXPECT_DOUBLE_EQ(clean.lo->value(), bubbled.lo->value());
  EXPECT_DOUBLE_EQ(clean.hi->value(), bubbled.hi->value());
}

TEST(SensorArray, DecodeRejectsWidthMismatch) {
  const auto arr = make_array();
  EXPECT_THROW((void)arr.decode(ThermoWord::of_count(2, 5), kSkew),
               std::logic_error);
}

TEST(SensorArray, RoundTripMeasureDecodeBracketsTrueVoltage) {
  const auto arr = make_array();
  for (double v = 0.90; v <= 1.25; v += 0.01) {
    const auto word = arr.measure(Volt{v}, kSkew);
    const auto bin = arr.decode(word, kSkew);
    if (bin.lo) {
      EXPECT_LE(bin.lo->value(), v + 1e-9) << "V=" << v;
    }
    if (bin.hi) {
      EXPECT_GT(bin.hi->value(), v - 1e-9) << "V=" << v;
    }
  }
}

TEST(SensorArray, GndDecodeFlipsInterval) {
  const auto arr = make_array();
  const Volt v_nom{1.0};
  const auto word = ThermoWord::of_count(3, 7);
  const auto vdd_bin = arr.decode(word, kSkew);
  const auto gnd_bin = arr.decode_gnd(word, kSkew, v_nom);
  ASSERT_TRUE(gnd_bin.in_range());
  EXPECT_NEAR(gnd_bin.lo->value(), 1.0 - vdd_bin.hi->value(), 1e-12);
  EXPECT_NEAR(gnd_bin.hi->value(), 1.0 - vdd_bin.lo->value(), 1e-12);
}

TEST(SensorArray, GndDecodeMoreOnesMeansLessBounce) {
  const auto arr = make_array();
  const auto quiet = arr.decode_gnd(ThermoWord::of_count(6, 7), kSkew,
                                    Volt{1.0});
  const auto noisy = arr.decode_gnd(ThermoWord::of_count(1, 7), kSkew,
                                    Volt{1.0});
  EXPECT_LT(quiet.estimate().value(), noisy.estimate().value());
}

TEST(SensorArray, WithLoadsValidatesOrdering) {
  const analog::AlphaPowerDelayModel inv;
  const analog::FlipFlopTimingModel ff;
  EXPECT_THROW(SensorArray::with_loads(inv, ff, {2.0_pF, 1.0_pF}),
               std::logic_error);
  EXPECT_THROW(SensorArray::with_loads(inv, ff, {}), std::logic_error);
  const auto ok = SensorArray::with_loads(inv, ff, {1.0_pF, 2.0_pF});
  EXPECT_EQ(ok.bits(), 2u);
}

TEST(VoltageBinType, EstimateAndRendering) {
  VoltageBin bin;
  bin.lo = Volt{0.992};
  bin.hi = Volt{1.021};
  EXPECT_NEAR(bin.estimate().value(), 1.0065, 1e-9);
  EXPECT_NE(bin.to_string().find("0.992"), std::string::npos);
  VoltageBin open_low;
  open_low.hi = Volt{0.827};
  EXPECT_TRUE(open_low.below_range());
  EXPECT_DOUBLE_EQ(open_low.estimate().value(), 0.827);
  EXPECT_NE(open_low.to_string().find("below"), std::string::npos);
}

}  // namespace
}  // namespace psnt::core
