#include "core/pulse_gen.h"

#include <gtest/gtest.h>

namespace psnt::core {
namespace {

using namespace psnt::literals;

TEST(PulseGen, PaperTableReproducedExactly) {
  // The Sec. III-B table: 26/40/50/65/77/92/100/107 ps.
  const auto& table = paper_delay_table();
  const double expected[8] = {26, 40, 50, 65, 77, 92, 100, 107};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(table[i].value(), expected[i]) << "code " << i;
  }
}

TEST(PulseGen, SkewIsInsertionPlusTap) {
  PulseGenerator pg;
  for (std::uint8_t c = 0; c < 8; ++c) {
    const DelayCode code{c};
    EXPECT_DOUBLE_EQ(pg.skew(code).value(),
                     pg.config().cp_insertion.value() +
                         paper_delay_table()[c].value());
  }
}

TEST(PulseGen, CommonPathCancelsOutOfSkew) {
  PulseGenerator::Config a;
  a.common_path = 120.0_ps;
  PulseGenerator::Config b = a;
  b.common_path = 500.0_ps;
  EXPECT_DOUBLE_EQ(PulseGenerator{a}.skew(DelayCode{3}).value(),
                   PulseGenerator{b}.skew(DelayCode{3}).value());
  // But the absolute edge times shift.
  EXPECT_NE(PulseGenerator{a}.cp_delay(DelayCode{3}).value(),
            PulseGenerator{b}.cp_delay(DelayCode{3}).value());
}

TEST(PulseGen, SkewMonotoneInCode) {
  PulseGenerator pg;
  for (std::uint8_t c = 1; c < 8; ++c) {
    EXPECT_GT(pg.skew(DelayCode{c}).value(),
              pg.skew(DelayCode{static_cast<std::uint8_t>(c - 1)}).value());
  }
}

TEST(PulseGen, RoutingSkewAddsToCpOnly) {
  PulseGenerator pg;
  const double base = pg.skew(DelayCode{0}).value();
  pg.set_routing_skew(5.0_ps);
  EXPECT_DOUBLE_EQ(pg.skew(DelayCode{0}).value(), base + 5.0);
  EXPECT_DOUBLE_EQ(pg.p_delay().value(), pg.config().common_path.value());
}

TEST(PulseGen, DelayLineStagesSumToTable) {
  PulseGenerator pg;
  const auto stages = pg.delay_line_stages();
  ASSERT_EQ(stages.size(), 8u);
  double acc = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    acc += stages[i].value();
    EXPECT_DOUBLE_EQ(acc, paper_delay_table()[i].value());
    EXPECT_GT(stages[i].value(), 0.0);
  }
}

TEST(PulseGen, RejectsNonMonotoneTable) {
  PulseGenerator::Config cfg;
  cfg.cp_delay[4] = 10.0_ps;  // below cp_delay[3]
  EXPECT_THROW(PulseGenerator{cfg}, std::logic_error);
}

TEST(DelayCodeType, WrapsToThreeBits) {
  EXPECT_EQ(DelayCode{9}.value(), 1);
  EXPECT_EQ(DelayCode{7}.value(), 7);
  EXPECT_EQ(DelayCode{}.value(), 0);
}

TEST(DelayCodeType, ToStringBinary) {
  EXPECT_EQ(DelayCode{0}.to_string(), "000");
  EXPECT_EQ(DelayCode{3}.to_string(), "011");
  EXPECT_EQ(DelayCode{5}.to_string(), "101");
  EXPECT_EQ(DelayCode{7}.to_string(), "111");
}

TEST(DelayCodeType, Ordering) {
  EXPECT_LT(DelayCode{2}, DelayCode{3});
  EXPECT_EQ(DelayCode{4}, DelayCode{4});
}

}  // namespace
}  // namespace psnt::core
