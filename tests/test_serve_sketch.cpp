// HistogramSketch property tests: the bounded-relative-error contract, exact
// merge, clamping at the trackable range edges, and the zero bucket.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/histogram_sketch.h"
#include "stats/rng.h"

namespace psnt::serve {
namespace {

double exact_quantile(std::vector<double> sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// Core contract: for values inside the trackable range, every quantile
// estimate is within alpha relative error of the exact order statistic.
TEST(HistogramSketch, QuantileRelativeErrorBound) {
  const SketchConfig config{0.01, 0.5, 160};
  HistogramSketch sketch{config};
  stats::Xoshiro256 rng(42);

  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Voltage-shaped stream: mostly near nominal with droop excursions.
    const double v = rng.bernoulli(0.9) ? rng.uniform(0.9, 1.1)
                                        : rng.uniform(0.7, 1.3);
    values.push_back(v);
    sketch.add(v);
  }
  std::sort(values.begin(), values.end());

  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double exact = exact_quantile(values, q);
    const double est = sketch.quantile(q);
    EXPECT_LE(std::abs(est - exact) / exact, config.alpha)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(HistogramSketch, QuantileBoundHoldsAcrossAlphas) {
  stats::Xoshiro256 rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.uniform(0.6, 2.0));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (const double alpha : {0.005, 0.02, 0.05}) {
    HistogramSketch sketch{SketchConfig{alpha, 0.5, 512}};
    for (const double v : values) sketch.add(v);
    for (double q = 0.05; q < 1.0; q += 0.05) {
      const double exact = exact_quantile(sorted, q);
      EXPECT_LE(std::abs(sketch.quantile(q) - exact) / exact, alpha)
          << "alpha=" << alpha << " q=" << q;
    }
  }
}

// merge(a, b) must be bucket-identical to a sketch that saw both streams —
// the property the store's per-shard / per-window publication relies on.
TEST(HistogramSketch, MergeIsExact) {
  const SketchConfig config{0.01, 1e-3, 128};
  HistogramSketch a{config};
  HistogramSketch b{config};
  HistogramSketch both{config};
  stats::Xoshiro256 rng(3);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.uniform(0.0, 3.0) - 0.05;  // some non-positive
    if (i % 2 == 0) {
      a.add(v);
    } else {
      b.add(v);
    }
    both.add(v);
  }

  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.zero_count(), both.zero_count());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  for (std::size_t i = 0; i < config.bucket_count; ++i) {
    EXPECT_EQ(a.bucket_count_at(i), both.bucket_count_at(i)) << "bucket " << i;
  }
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q));
  }
}

TEST(HistogramSketch, NonPositiveValuesLandInZeroBucket) {
  HistogramSketch sketch{SketchConfig{0.01, 1e-3, 64}};
  sketch.add(0.0);
  sketch.add(-2.5);
  sketch.add(1.0);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.zero_count(), 2u);
  EXPECT_DOUBLE_EQ(sketch.min(), -2.5);
  // The bottom quantiles report 0 (the zero bucket), clamped to min.
  EXPECT_LE(sketch.quantile(0.0), 0.0);
}

TEST(HistogramSketch, ClampsOutsideTrackableRange) {
  const SketchConfig config{0.01, 0.5, 32};  // deliberately tiny range
  HistogramSketch sketch{config};
  const double huge = sketch.max_trackable() * 100.0;
  sketch.add(0.01);  // below min_value -> bucket 0
  sketch.add(huge);  // above max_trackable -> last bucket
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_EQ(sketch.bucket_index(0.01), 0u);
  EXPECT_EQ(sketch.bucket_index(huge), config.bucket_count - 1);
  // Estimates stay inside the observed range even when buckets clamp.
  EXPECT_GE(sketch.quantile(0.0), 0.01);
  EXPECT_LE(sketch.quantile(1.0), huge);
}

TEST(HistogramSketch, EmptyAndReset) {
  HistogramSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  sketch.add(1.0);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
}

TEST(HistogramSketch, MeanMatchesExactSum) {
  HistogramSketch sketch{SketchConfig{0.02, 0.5, 64}};
  double sum = 0.0;
  stats::Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.8, 1.2);
    sum += v;
    sketch.add(v);
  }
  EXPECT_NEAR(sketch.mean(), sum / 1000.0, 1e-12);  // sum is exact, not bucketed
}

}  // namespace
}  // namespace psnt::serve
