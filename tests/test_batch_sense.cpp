// Property suite for the vectorized batch SENSE path (DESIGN.md §14):
// BatchedSenseKernel::measure_batch and BehavioralEngine::measure_raw_batch
// must be bit-identical to the scalar reference for ANY input — random
// supplies, voltages parked a ULP away from every firing threshold, samples
// straddling the fast_path() saturation boundary, NaN. The guard-band design
// means "identical or flagged back to the scalar path"; these tests drive
// both arms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "analog/rail.h"
#include "calib/fit.h"
#include "core/measure_engine.h"
#include "core/sense_kernel.h"
#include "core/sensor_array.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

SensorArray make_uniform_array() {
  return SensorArray::linear(analog::AlphaPowerDelayModel{},
                             analog::FlipFlopTimingModel{}, 1.6_pF, 0.12_pF,
                             7);
}

SensorArray make_mismatched_array() {
  std::vector<SensorCell> cells;
  for (std::size_t i = 0; i < 7; ++i) {
    analog::AlphaPowerParams p;
    p.drive_k_pf_per_ps = 0.030 + 0.001 * static_cast<double>(i);
    cells.emplace_back(analog::AlphaPowerDelayModel{p},
                       analog::FlipFlopTimingModel{},
                       Picofarad{1.6 + 0.12 * static_cast<double>(i)});
  }
  return SensorArray{std::move(cells)};
}

Picoseconds skew_for(DelayCode code) {
  return Picoseconds{120.0 + 12.0 * static_cast<double>(code.value())};
}

// The scalar reference the batch path must reproduce bit-for-bit: the
// engine's per-sample selection between the kernel fast path and the raw
// array model.
ThermoWord scalar_reference(const SensorArray& arr,
                            const BatchedSenseKernel& kernel, double v,
                            Picoseconds skew) {
  if (kernel.fast_path(Volt{v})) return kernel.measure(arr, Volt{v}, skew);
  return arr.measure(Volt{v}, skew);
}

// Resolves a voltage batch the way BehavioralEngine::capture_batch does:
// vectorized compare first, flagged samples through the scalar reference.
std::vector<ThermoWord> batch_resolved(const SensorArray& arr,
                                       BatchedSenseKernel& kernel,
                                       const std::vector<double>& v,
                                       DelayCode code, Picoseconds skew) {
  std::vector<ThermoWord> words(v.size());
  std::vector<std::uint8_t> need_scalar(v.size(), 0);
  const bool vectored = kernel.measure_batch(arr, v.data(), v.size(), code,
                                             skew, words.data(),
                                             need_scalar.data());
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (!vectored || need_scalar[k]) {
      words[k] = scalar_reference(arr, kernel, v[k], skew);
    }
  }
  return words;
}

TEST(BatchSense, RandomSuppliesBitIdenticalAcrossAllCodes) {
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  ASSERT_TRUE(kernel.vectorizable());

  std::mt19937_64 rng(20260809);
  std::uniform_real_distribution<double> uni(0.0, 1.8);
  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const DelayCode code{c};
    const auto skew = skew_for(code);
    std::vector<double> v(256);
    for (double& x : v) x = uni(rng);
    const auto words = batch_resolved(arr, kernel, v, code, skew);
    for (std::size_t k = 0; k < v.size(); ++k) {
      const ThermoWord ref = scalar_reference(arr, kernel, v[k], skew);
      ASSERT_EQ(words[k], ref) << "code=" << int(c) << " V=" << v[k];
    }
  }
  // The sweep must have exercised the vector arm, not fallen back wholesale.
  EXPECT_GT(kernel.batch_vector_samples(), kernel.batch_scalar_fallbacks());
}

TEST(BatchSense, ThresholdStraddlersBitIdenticalOrFlagged) {
  // Park supplies a hair on each side of every firing threshold — the exact
  // voltages where one wrong ULP in the compare ladder would flip a bit —
  // plus the fast_path() saturation boundary around Vt. Identity must hold
  // sample-for-sample; the guard band may route them to the scalar arm, but
  // the resolved word must match regardless.
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  ASSERT_TRUE(kernel.vectorizable());

  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const DelayCode code{c};
    const auto skew = skew_for(code);
    std::vector<double> v;
    for (const Volt& thr : arr.sorted_thresholds(skew)) {
      const double b = thr.value();
      for (const double eps : {1e-12, 1e-9, 1e-6}) {
        v.push_back(b - eps);
        v.push_back(b + eps);
      }
      v.push_back(b);
      v.push_back(std::nextafter(b, 0.0));
      v.push_back(std::nextafter(b, 2.0));
    }
    // fast_path() saturation boundary: Vt + 1e-9 is the exact guard edge.
    const double vt = 0.32;  // default AlphaPowerParams threshold
    for (const double eps : {0.0, 1e-12, 1e-9, 2e-9, 1e-6}) {
      v.push_back(vt + 1e-9 - eps);
      v.push_back(vt + 1e-9 + eps);
    }
    const auto words = batch_resolved(arr, kernel, v, code, skew);
    for (std::size_t k = 0; k < v.size(); ++k) {
      const ThermoWord ref = scalar_reference(arr, kernel, v[k], skew);
      ASSERT_EQ(words[k], ref) << "code=" << int(c) << " V=" << v[k];
    }
  }
}

TEST(BatchSense, NonFiniteSuppliesAreFlaggedNotSensed) {
  const auto arr = make_uniform_array();
  BatchedSenseKernel kernel{arr};
  ASSERT_TRUE(kernel.vectorizable());
  const DelayCode code{3};
  const auto skew = skew_for(code);
  const std::vector<double> v = {std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(), 1.0};
  std::vector<ThermoWord> words(v.size());
  std::vector<std::uint8_t> need_scalar(v.size(), 2);
  ASSERT_TRUE(kernel.measure_batch(arr, v.data(), v.size(), code, skew,
                                   words.data(), need_scalar.data()));
  EXPECT_EQ(need_scalar[0], 1) << "NaN must fall back";
  EXPECT_EQ(need_scalar[1], 1) << "+inf is outside the compare window";
  EXPECT_EQ(need_scalar[2], 1) << "-inf is outside the compare window";
  EXPECT_EQ(need_scalar[3], 0) << "nominal supply stays on the vector arm";
  EXPECT_EQ(words[3], kernel.measure(arr, Volt{1.0}, skew));
}

TEST(BatchSense, MismatchedDriveIsNotVectorizable) {
  const auto arr = make_mismatched_array();
  BatchedSenseKernel kernel{arr};
  EXPECT_FALSE(kernel.vectorizable());
  const std::vector<double> v = {1.0, 1.1};
  std::vector<ThermoWord> words(v.size());
  std::vector<std::uint8_t> need_scalar(v.size(), 0);
  // Declines without touching the outputs; caller runs the scalar loop.
  EXPECT_FALSE(kernel.measure_batch(arr, v.data(), v.size(), DelayCode{2},
                                    skew_for(DelayCode{2}), words.data(),
                                    need_scalar.data()));
}

TEST(BatchSense, DeepMetaResolverDisablesTheVectorPath) {
  // A Monte-Carlo resolver makes sampling non-deterministic near zero
  // margin; the compare ladder cannot represent that, so the kernel must
  // refuse to vectorize the whole array.
  analog::FlipFlopTimingModel ff;
  ff.set_deep_meta_resolver(
      [](Picoseconds, bool new_value, bool) { return new_value; },
      Picoseconds{0.5});
  const auto arr = SensorArray::linear(analog::AlphaPowerDelayModel{}, ff,
                                       1.6_pF, 0.12_pF, 7);
  BatchedSenseKernel kernel{arr};
  EXPECT_TRUE(kernel.uniform()) << "drive is still uniform";
  EXPECT_FALSE(kernel.vectorizable()) << "resolver must gate the vector path";
}

TEST(BatchSense, WidthPreconditionIsAlwaysOn) {
  // The width check guards every entry point in release builds too: a kernel
  // built from one array must refuse an array of a different width instead
  // of decoding against the wrong cached ladders.
  const auto seven = make_uniform_array();
  const auto five = SensorArray::linear(analog::AlphaPowerDelayModel{},
                                        analog::FlipFlopTimingModel{}, 1.6_pF,
                                        0.12_pF, 5);
  BatchedSenseKernel kernel{seven};
  const auto skew = skew_for(DelayCode{1});
  EXPECT_THROW((void)kernel.measure(five, Volt{1.0}, skew), std::logic_error);
  EXPECT_THROW((void)kernel.sorted_thresholds(five, DelayCode{1}, skew),
               std::logic_error);
  EXPECT_THROW((void)kernel.dynamic_range(five, DelayCode{1}, skew),
               std::logic_error);
  std::vector<double> v = {1.0};
  ThermoWord w;
  std::uint8_t flag = 0;
  EXPECT_THROW((void)kernel.measure_batch(five, v.data(), 1, DelayCode{1},
                                          skew, &w, &flag),
               std::logic_error);
}

TEST(BatchSense, AdoptedLaddersAreBitIdenticalToOwnSolve) {
  // The scan-grid amortization: one kernel solves the per-code tables, every
  // value-identical sibling adopts them. The adopted tables must be the
  // exact doubles the sibling's own solve would have produced, so the
  // resolved words match bit-for-bit.
  const auto arr = make_uniform_array();
  BatchedSenseKernel solver{arr};
  ASSERT_TRUE(solver.vectorizable());
  const DelayCode code{3};
  const auto skew = skew_for(code);
  solver.prewarm(code, skew);
  (void)solver.sorted_thresholds(arr, code, skew);

  BatchedSenseKernel adopter{arr};
  BatchedSenseKernel reference{arr};
  EXPECT_GT(adopter.adopt_ladders(solver), 0u);

  std::mt19937_64 rng(414);
  std::uniform_real_distribution<double> uni(0.2, 1.8);
  std::vector<double> v(128);
  for (double& x : v) x = uni(rng);
  const auto adopted_words = batch_resolved(arr, adopter, v, code, skew);
  const auto own_words = batch_resolved(arr, reference, v, code, skew);
  for (std::size_t k = 0; k < v.size(); ++k) {
    ASSERT_EQ(adopted_words[k], own_words[k]) << "V=" << v[k];
  }
  // The adopted decode ladder is equally exact, threshold for threshold.
  const auto& adopted_thr = adopter.sorted_thresholds(arr, code, skew);
  const auto& own_thr = reference.sorted_thresholds(arr, code, skew);
  ASSERT_EQ(adopted_thr.size(), own_thr.size());
  for (std::size_t i = 0; i < own_thr.size(); ++i) {
    EXPECT_EQ(adopted_thr[i].value(), own_thr[i].value());
  }
  // ...and the adopter really used the shared table instead of re-solving.
  EXPECT_EQ(adopter.ladder_solves(), 0u);
  EXPECT_EQ(reference.ladder_solves(), 1u);
}

TEST(BatchSense, AdoptRefusesValueDifferentArrays) {
  // A single differing parameter bit disqualifies the share: the tables are
  // pure functions of the array doubles, so cross-adoption would decode
  // against the wrong thresholds.
  const auto uniform = make_uniform_array();
  const auto mismatched = make_mismatched_array();
  BatchedSenseKernel solver{uniform};
  solver.prewarm(DelayCode{2}, skew_for(DelayCode{2}));
  BatchedSenseKernel other{mismatched};
  EXPECT_EQ(other.adopt_ladders(solver), 0u);

  // Same model family but one more cell: width fingerprint must refuse too.
  const auto wider = SensorArray::linear(analog::AlphaPowerDelayModel{},
                                         analog::FlipFlopTimingModel{}, 1.6_pF,
                                         0.12_pF, 8);
  BatchedSenseKernel wide_kernel{wider};
  EXPECT_EQ(wide_kernel.adopt_ladders(solver), 0u);
}

// ---------------------------------------------------------------------------
// Engine level: measure_raw_batch / measure_batch against the per-sample
// transaction loop, on noisy rails, across codes, targets and hooks.
// ---------------------------------------------------------------------------

BehavioralEngine make_engine() {
  return calib::make_paper_engine(calib::calibrated().model);
}

MeasureRequest request_at(double ps, SenseTarget target = SenseTarget::kVdd) {
  MeasureRequest req;
  req.start = Picoseconds{ps};
  req.target = target;
  return req;
}

// A deterministic noisy rail: nominal plus a two-tone ripple that sweeps
// samples across several thermometer bins over a batch.
analog::CallbackRail noisy_rail(double v0, double amp) {
  return analog::CallbackRail([v0, amp](Picoseconds t) {
    const double x = t.value() * 1e-3;
    return Volt{v0 + amp * (std::sin(0.37 * x) + 0.5 * std::sin(1.13 * x))};
  });
}

void expect_same_raw(const RawSample& a, const RawSample& b,
                     const std::string& what) {
  ASSERT_EQ(a.word, b.word) << what;
  EXPECT_EQ(a.timestamp.value(), b.timestamp.value()) << what;
  EXPECT_EQ(a.code.value(), b.code.value()) << what;
  EXPECT_EQ(a.target, b.target) << what;
}

TEST(BatchEngine, RawBatchMatchesRawLoopAcrossCodesAndTargets) {
  const auto vdd = noisy_rail(1.0, 0.06);
  const analog::ConstantRail gnd{0.015_V};
  const analog::RailPair rails{&vdd, &gnd};
  const Picoseconds interval{7500.0};
  constexpr std::size_t kCount = 96;

  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    for (const SenseTarget target : {SenseTarget::kVdd, SenseTarget::kGnd}) {
      BehavioralEngine batch_engine = make_engine();
      BehavioralEngine serial_engine = make_engine();
      ASSERT_TRUE(batch_engine.batch_capable());

      MeasureRequest first = request_at(1000.0, target);
      first.code = DelayCode{c};
      std::vector<RawSample> batch;
      batch_engine.measure_raw_batch(first, interval, kCount, rails, batch);
      ASSERT_EQ(batch.size(), kCount);

      for (std::size_t k = 0; k < kCount; ++k) {
        MeasureRequest req = first;
        req.start = first.start + Picoseconds{interval.value() *
                                              static_cast<double>(k)};
        const RawSample ref = serial_engine.measure_raw(req, rails);
        expect_same_raw(batch[k], ref,
                        "code=" + std::to_string(int(c)) + " target=" +
                            (target == SenseTarget::kVdd ? "vdd" : "gnd") +
                            " k=" + std::to_string(k));
      }
      EXPECT_EQ(batch_engine.fsm().completed_measures(), serial_engine.fsm().completed_measures())
          << "batch must retire the same FSM transaction count";
    }
  }
}

TEST(BatchEngine, DecodedBatchMatchesMeasureLoop) {
  const auto vdd = noisy_rail(1.0, 0.08);
  const analog::RailPair rails{&vdd, nullptr};
  const Picoseconds interval{5000.0};
  constexpr std::size_t kCount = 64;

  BehavioralEngine batch_engine = make_engine();
  BehavioralEngine serial_engine = make_engine();
  std::vector<Measurement> batch;
  batch_engine.measure_batch(request_at(0.0), interval, kCount, rails, batch);
  ASSERT_EQ(batch.size(), kCount);
  for (std::size_t k = 0; k < kCount; ++k) {
    MeasureRequest req = request_at(interval.value() *
                                    static_cast<double>(k));
    const Measurement ref = serial_engine.measure(req, rails);
    ASSERT_EQ(batch[k].word, ref.word) << "k=" << k;
    EXPECT_EQ(batch[k].timestamp.value(), ref.timestamp.value());
    ASSERT_EQ(batch[k].bin.lo.has_value(), ref.bin.lo.has_value());
    ASSERT_EQ(batch[k].bin.hi.has_value(), ref.bin.hi.has_value());
    if (ref.bin.lo) {
      EXPECT_EQ(batch[k].bin.lo->value(), ref.bin.lo->value());
    }
    if (ref.bin.hi) {
      EXPECT_EQ(batch[k].bin.hi->value(), ref.bin.hi->value());
    }
  }
}

TEST(BatchEngine, WordHookAppliesPerSampleInOrder) {
  // A stateful hook (flips the low bit of every third word) must see the
  // batch in sample order and produce the same corruption sequence as the
  // serial loop.
  const auto vdd = noisy_rail(1.0, 0.05);
  const analog::RailPair rails{&vdd, nullptr};
  const Picoseconds interval{6000.0};
  constexpr std::size_t kCount = 48;

  const auto install_hook = [](BehavioralEngine& e) {
    auto n = std::make_shared<std::size_t>(0);
    e.context().set_word_hook([n](ThermoWord& w) {
      if ((*n)++ % 3 == 0) w.set_bit(0, !w.bit(0));
    });
  };
  BehavioralEngine batch_engine = make_engine();
  BehavioralEngine serial_engine = make_engine();
  install_hook(batch_engine);
  install_hook(serial_engine);

  std::vector<RawSample> batch;
  batch_engine.measure_raw_batch(request_at(0.0), interval, kCount, rails,
                                 batch);
  for (std::size_t k = 0; k < kCount; ++k) {
    MeasureRequest req = request_at(interval.value() *
                                    static_cast<double>(k));
    const RawSample ref = serial_engine.measure_raw(req, rails);
    ASSERT_EQ(batch[k].word, ref.word) << "k=" << k;
  }
}

TEST(BatchEngine, FaultHookedHandleStaysIdenticalThroughBatch) {
  // Through the type-erased handle with fault hooks on (rail-offset wrapper
  // installed) and a nonzero offset: the batch capture reads the same offset
  // rail per sample as the serial loop.
  const auto& model = calib::calibrated().model;
  const auto vdd = noisy_rail(1.0, 0.04);
  const analog::RailPair rails{&vdd, nullptr};
  EngineSiteOptions options;
  options.fault_hooks = true;

  auto batch_handle =
      make_behavioral_engine(calib::make_paper_engine(model), rails, options);
  auto serial_handle =
      make_behavioral_engine(calib::make_paper_engine(model), rails, options);
  ASSERT_TRUE(batch_handle->supports_raw_samples());
  ASSERT_TRUE(batch_handle->prefers_batch());
  batch_handle->context().set_rail_offset(-0.0375);
  serial_handle->context().set_rail_offset(-0.0375);

  const Picoseconds interval{9000.0};
  constexpr std::size_t kCount = 96;
  MeasureRequest first = request_at(500.0);
  std::vector<RawSample> batch;
  batch_handle->measure_raw_batch(first, interval, kCount, batch);
  ASSERT_EQ(batch.size(), kCount);
  for (std::size_t k = 0; k < kCount; ++k) {
    MeasureRequest req = first;
    req.start = first.start +
                Picoseconds{interval.value() * static_cast<double>(k)};
    const RawSample ref = serial_handle->measure_raw(req);
    ASSERT_EQ(batch[k].word, ref.word) << "k=" << k;
    EXPECT_EQ(batch[k].timestamp.value(), ref.timestamp.value());
  }
}

}  // namespace
}  // namespace psnt::core
