#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/delay_line.h"
#include "sim/probe.h"
#include "sim/vcd.h"

namespace psnt::sim {
namespace {

using namespace psnt::literals;

TEST(DelayLine, TapsAccumulateStageDelays) {
  Simulator sim;
  Net& in = sim.net("in");
  auto& line = sim.add<DelayLine>("dl", in,
                                  std::vector<Picoseconds>{
                                      26.0_ps, 14.0_ps, 10.0_ps, 15.0_ps});
  ASSERT_EQ(line.stages(), 4u);
  TransitionRecorder r0(line.tap(0));
  TransitionRecorder r3(line.tap(3));
  sim.drive(in, 0.0_ps, Logic::L0);
  sim.drive(in, 100.0_ps, Logic::L1);
  sim.run_all();
  EXPECT_DOUBLE_EQ(r0.last_rise()->value(), 126.0);
  EXPECT_DOUBLE_EQ(r3.last_rise()->value(), 165.0);
  EXPECT_DOUBLE_EQ(line.cumulative_delay(0).value(), 26.0);
  EXPECT_DOUBLE_EQ(line.cumulative_delay(3).value(), 65.0);
}

TEST(DelayLine, CumulativeDelayBoundsChecked) {
  Simulator sim;
  Net& in = sim.net("in");
  auto& line =
      sim.add<DelayLine>("dl", in, std::vector<Picoseconds>{5.0_ps});
  EXPECT_THROW((void)line.cumulative_delay(1), std::logic_error);
  EXPECT_THROW(sim.add<DelayLine>("dl2", in, std::vector<Picoseconds>{}),
               std::logic_error);
}

TEST(DelayLine, AllTapsSeeTheEdgeInOrder) {
  Simulator sim;
  Net& in = sim.net("in");
  auto& line = sim.add<DelayLine>(
      "dl", in,
      std::vector<Picoseconds>{26.0_ps, 14.0_ps, 10.0_ps, 15.0_ps, 12.0_ps,
                               15.0_ps, 8.0_ps, 7.0_ps});
  std::vector<std::unique_ptr<TransitionRecorder>> recs;
  for (std::size_t k = 0; k < 8; ++k) {
    recs.push_back(std::make_unique<TransitionRecorder>(line.tap(k)));
  }
  sim.drive(in, 0.0_ps, Logic::L0);
  sim.drive(in, 50.0_ps, Logic::L1);
  sim.run_all();
  double prev = 0.0;
  for (std::size_t k = 0; k < 8; ++k) {
    const double t = recs[k]->last_rise()->value();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(prev, 50.0 + 107.0);  // the paper's code-111 value
}

TEST(Vcd, WritesHeaderInitialValuesAndChanges) {
  const std::string path = "/tmp/psnt_vcd_test.vcd";
  {
    Simulator sim;
    Net& a = sim.net("sig_a");
    Net& b = sim.net("sig_b");
    VcdWriter vcd(path, "tb");
    vcd.trace(a);
    vcd.trace(b);
    EXPECT_EQ(vcd.traced_nets(), 2u);
    sim.drive(a, 0.0_ps, Logic::L0);
    vcd.begin_dump();
    sim.drive(a, 10.0_ps, Logic::L1);
    sim.drive(b, 20.0_ps, Logic::L0);
    sim.run_all();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string vcd = ss.str();
  EXPECT_NE(vcd.find("$timescale 1fs $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module tb $end"), std::string::npos);
  EXPECT_NE(vcd.find("sig_a"), std::string::npos);
  EXPECT_NE(vcd.find("sig_b"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#10000"), std::string::npos);  // 10 ps in fs
  EXPECT_NE(vcd.find("#20000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, TraceAfterDumpIsRejected) {
  Simulator sim;
  Net& a = sim.net("a");
  VcdWriter vcd("/tmp/psnt_vcd_test2.vcd");
  vcd.trace(a);
  vcd.begin_dump();
  EXPECT_THROW(vcd.trace(a), std::logic_error);
  EXPECT_THROW(vcd.begin_dump(), std::logic_error);
  std::remove("/tmp/psnt_vcd_test2.vcd");
}

}  // namespace
}  // namespace psnt::sim
