#include "sta/report.h"

#include <gtest/gtest.h>

#include "sta/control_netlist.h"

namespace psnt::sta {
namespace {

using namespace psnt::literals;

TEST(StaReport, SimpleChainRendersAllStages) {
  TimingGraph g;
  const auto a = g.add_node("ffa/Q");
  const auto b = g.add_node("u1/Y");
  const auto c = g.add_node("ffb/D");
  g.add_edge(a, b, 40.0_ps);
  g.add_edge(b, c, 10.0_ps);
  g.set_source(a, 100.0_ps);
  g.set_sink(c, 50.0_ps);
  const auto path = g.critical_path();
  const std::string report = render_timing_report(g, path);
  EXPECT_NE(report.find("ffa/Q (launch)"), std::string::npos);
  EXPECT_NE(report.find("u1/Y"), std::string::npos);
  EXPECT_NE(report.find("ffb/D"), std::string::npos);
  EXPECT_NE(report.find("(setup)"), std::string::npos);
  EXPECT_NE(report.find("200.0"), std::string::npos);  // final arrival
}

TEST(StaReport, SlackMetWhenUnderPeriod) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 100.0_ps);
  g.set_source(a, 0.0_ps);
  g.set_sink(b, 0.0_ps);
  ReportOptions options;
  options.clock_period = 500.0_ps;
  const std::string report =
      render_timing_report(g, g.critical_path(), options);
  EXPECT_NE(report.find("MET"), std::string::npos);
  EXPECT_EQ(report.find("VIOLATED"), std::string::npos);
}

TEST(StaReport, SlackViolatedWhenOverPeriod) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 900.0_ps);
  g.set_source(a, 0.0_ps);
  g.set_sink(b, 0.0_ps);
  ReportOptions options;
  options.clock_period = 500.0_ps;
  const std::string report =
      render_timing_report(g, g.critical_path(), options);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);
}

TEST(StaReport, ControlNetlistReportIsComplete) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  const auto path = netlist.graph.critical_path();
  const std::string report = render_timing_report(netlist.graph, path);
  // Every path node appears once, launch first, setup line present.
  for (const auto& node : path.nodes) {
    EXPECT_NE(report.find(node), std::string::npos) << node;
  }
  EXPECT_NE(report.find("(launch)"), std::string::npos);
  EXPECT_NE(report.find("(setup)"), std::string::npos);
  EXPECT_NE(report.find("1220"), std::string::npos);
  EXPECT_NE(report.find("MET"), std::string::npos);  // fits 1250 ps
}

TEST(StaReport, IncrementsSumToArrival) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  const auto path = netlist.graph.critical_path();
  const std::string report = render_timing_report(netlist.graph, path);
  // Parse the Path column of the last stage line "(setup)".
  const auto pos = report.find("(setup)");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = report.find('\n', pos);
  const std::string line = report.substr(pos, line_end - pos);
  const double arrival = std::stod(line.substr(line.rfind(' ') + 1));
  EXPECT_NEAR(arrival, path.arrival.value(), 0.05);
}

TEST(StaReport, RejectsEmptyPath) {
  TimingGraph g;
  CriticalPath empty;
  EXPECT_THROW((void)render_timing_report(g, empty), std::logic_error);
}

}  // namespace
}  // namespace psnt::sta
