#include "core/encoder.h"

#include <gtest/gtest.h>

namespace psnt::core {
namespace {

TEST(Encoder, MajorityCountsOnes) {
  Encoder enc{BubblePolicy::kMajority};
  const auto out = enc.encode(ThermoWord::from_string("0011111"));
  EXPECT_EQ(out.count, 5);
  EXPECT_EQ(out.binary, 5);
  EXPECT_TRUE(out.valid);
  EXPECT_FALSE(out.underflow);
  EXPECT_FALSE(out.overflow);
  EXPECT_EQ(out.bubble_errors, 0);
}

TEST(Encoder, MajorityToleratesBubbles) {
  Encoder enc{BubblePolicy::kMajority};
  const auto out = enc.encode(ThermoWord::from_string("0101111"));
  EXPECT_EQ(out.count, 5);  // popcount unaffected by the bubble
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.bubble_errors, 2);
}

TEST(Encoder, RejectFlagsBubbles) {
  Encoder enc{BubblePolicy::kReject};
  EXPECT_TRUE(enc.encode(ThermoWord::from_string("0011111")).valid);
  const auto bad = enc.encode(ThermoWord::from_string("0101111"));
  EXPECT_FALSE(bad.valid);
  EXPECT_EQ(bad.count, 5);
}

TEST(Encoder, FirstZeroUnderReadsOnBubbles) {
  Encoder enc{BubblePolicy::kFirstZero};
  EXPECT_EQ(enc.encode(ThermoWord::from_string("0011111")).count, 5);
  // Bubble at bit 2: ripple encoder stops there.
  EXPECT_EQ(enc.encode(ThermoWord::from_string("0111011")).count, 2);
}

TEST(Encoder, UnderflowOverflowFlags) {
  Encoder enc;
  const auto lo = enc.encode(ThermoWord::from_string("0000000"));
  EXPECT_TRUE(lo.underflow);
  EXPECT_FALSE(lo.overflow);
  EXPECT_EQ(lo.count, 0);
  const auto hi = enc.encode(ThermoWord::from_string("1111111"));
  EXPECT_TRUE(hi.overflow);
  EXPECT_FALSE(hi.underflow);
  EXPECT_EQ(hi.count, 7);
}

TEST(Encoder, AllCountsRoundTrip) {
  Encoder enc;
  for (std::size_t ones = 0; ones <= 7; ++ones) {
    const auto out = enc.encode(ThermoWord::of_count(ones, 7));
    EXPECT_EQ(out.count, ones);
    EXPECT_EQ(out.binary, ones);
  }
}

TEST(Encoder, PolicyNames) {
  EXPECT_STREQ(to_string(BubblePolicy::kReject), "reject");
  EXPECT_STREQ(to_string(BubblePolicy::kMajority), "majority");
  EXPECT_STREQ(to_string(BubblePolicy::kFirstZero), "first-zero");
}

}  // namespace
}  // namespace psnt::core
