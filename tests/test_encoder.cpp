#include "core/encoder.h"

#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/sensor_array.h"

namespace psnt::core {
namespace {

TEST(Encoder, MajorityCountsOnes) {
  Encoder enc{BubblePolicy::kMajority};
  const auto out = enc.encode(ThermoWord::from_string("0011111"));
  EXPECT_EQ(out.count, 5);
  EXPECT_EQ(out.binary, 5);
  EXPECT_TRUE(out.valid);
  EXPECT_FALSE(out.underflow);
  EXPECT_FALSE(out.overflow);
  EXPECT_EQ(out.bubble_errors, 0);
}

TEST(Encoder, MajorityToleratesBubbles) {
  Encoder enc{BubblePolicy::kMajority};
  const auto out = enc.encode(ThermoWord::from_string("0101111"));
  EXPECT_EQ(out.count, 5);  // popcount unaffected by the bubble
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.bubble_errors, 2);
}

TEST(Encoder, RejectFlagsBubbles) {
  Encoder enc{BubblePolicy::kReject};
  EXPECT_TRUE(enc.encode(ThermoWord::from_string("0011111")).valid);
  const auto bad = enc.encode(ThermoWord::from_string("0101111"));
  EXPECT_FALSE(bad.valid);
  EXPECT_EQ(bad.count, 5);
}

TEST(Encoder, FirstZeroUnderReadsOnBubbles) {
  Encoder enc{BubblePolicy::kFirstZero};
  EXPECT_EQ(enc.encode(ThermoWord::from_string("0011111")).count, 5);
  // Bubble at bit 2: ripple encoder stops there.
  EXPECT_EQ(enc.encode(ThermoWord::from_string("0111011")).count, 2);
}

TEST(Encoder, UnderflowOverflowFlags) {
  Encoder enc;
  const auto lo = enc.encode(ThermoWord::from_string("0000000"));
  EXPECT_TRUE(lo.underflow);
  EXPECT_FALSE(lo.overflow);
  EXPECT_EQ(lo.count, 0);
  const auto hi = enc.encode(ThermoWord::from_string("1111111"));
  EXPECT_TRUE(hi.overflow);
  EXPECT_FALSE(hi.underflow);
  EXPECT_EQ(hi.count, 7);
}

TEST(Encoder, AllCountsRoundTrip) {
  Encoder enc;
  for (std::size_t ones = 0; ones <= 7; ++ones) {
    const auto out = enc.encode(ThermoWord::of_count(ones, 7));
    EXPECT_EQ(out.count, ones);
    EXPECT_EQ(out.binary, ones);
  }
}

// Regression pinning the range-flag pairing (the encoder.h comments were
// easy to misread): underflow pairs with count == 0 — every cell in error,
// reading saturated LOW; overflow pairs with count == width — no cell in
// error, reading saturated HIGH. Holds for every policy, and intermediate
// counts raise neither flag.
TEST(Encoder, RangeFlagPairingRegression) {
  for (const auto policy : {BubblePolicy::kReject, BubblePolicy::kMajority,
                            BubblePolicy::kFirstZero}) {
    Encoder enc{policy};
    const auto lo = enc.encode(ThermoWord::of_count(0, 7));
    EXPECT_EQ(lo.count, 0);
    EXPECT_TRUE(lo.underflow) << to_string(policy);
    EXPECT_FALSE(lo.overflow) << to_string(policy);
    const auto hi = enc.encode(ThermoWord::of_count(7, 7));
    EXPECT_EQ(hi.count, 7);
    EXPECT_TRUE(hi.overflow) << to_string(policy);
    EXPECT_FALSE(hi.underflow) << to_string(policy);
    for (std::size_t ones = 1; ones <= 6; ++ones) {
      const auto mid = enc.encode(ThermoWord::of_count(ones, 7));
      EXPECT_FALSE(mid.underflow) << to_string(policy) << " ones=" << ones;
      EXPECT_FALSE(mid.overflow) << to_string(policy) << " ones=" << ones;
    }
  }
}

// The flags agree with the decode path: the word that raises `underflow`
// decodes below the converter range, the word that raises `overflow` above
// it — the directions the paper's Fig. 5 dynamic ranges define.
TEST(Encoder, RangeFlagsMatchDecodedBins) {
  Encoder enc;
  const auto array = calib::make_paper_array(calib::calibrated().model);
  const Picoseconds skew{150.0};

  const auto lo_word = ThermoWord::of_count(0, array.bits());
  EXPECT_TRUE(enc.encode(lo_word).underflow);
  EXPECT_TRUE(array.decode(lo_word, skew).below_range());

  const auto hi_word = ThermoWord::of_count(array.bits(), array.bits());
  EXPECT_TRUE(enc.encode(hi_word).overflow);
  EXPECT_TRUE(array.decode(hi_word, skew).above_range());
}

// kFirstZero corner: a bubble at bit 0 stops the ripple count at zero, so
// the word reads as underflow even though higher cells sampled fine.
TEST(Encoder, FirstZeroBubbleAtBitZeroUnderflows) {
  Encoder enc{BubblePolicy::kFirstZero};
  const auto out = enc.encode(ThermoWord::from_string("1111110"));
  EXPECT_EQ(out.count, 0);
  EXPECT_TRUE(out.underflow);
  EXPECT_FALSE(out.overflow);
}

TEST(Encoder, PolicyNames) {
  EXPECT_STREQ(to_string(BubblePolicy::kReject), "reject");
  EXPECT_STREQ(to_string(BubblePolicy::kMajority), "majority");
  EXPECT_STREQ(to_string(BubblePolicy::kFirstZero), "first-zero");
}

}  // namespace
}  // namespace psnt::core
