#include "core/measurement_log.h"

#include <gtest/gtest.h>

#include "analog/rail.h"
#include "calib/fit.h"
#include "core/thermometer.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

Measurement make_measurement(std::size_t ones, double lo, double hi) {
  Measurement m;
  m.word = ThermoWord::of_count(ones, 7);
  if (ones > 0) m.bin.lo = Volt{lo};
  if (ones < 7) m.bin.hi = Volt{hi};
  return m;
}

TEST(MeasurementLog, StartsEmpty) {
  MeasurementLog log{7};
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.word_width(), 7u);
  EXPECT_FALSE(log.worst().has_value());
  EXPECT_DOUBLE_EQ(log.out_of_range_fraction(), 0.0);
}

TEST(MeasurementLog, HistogramCountsReadings) {
  MeasurementLog log{7};
  log.record(make_measurement(3, 0.93, 0.96));
  log.record(make_measurement(3, 0.93, 0.96));
  log.record(make_measurement(5, 0.99, 1.02));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count_histogram()[3], 2u);
  EXPECT_EQ(log.count_histogram()[5], 1u);
  EXPECT_EQ(log.count_histogram()[0], 0u);
}

TEST(MeasurementLog, TracksOutOfRange) {
  MeasurementLog log{7};
  log.record(make_measurement(0, 0.0, 0.83));   // underflow
  log.record(make_measurement(7, 1.05, 0.0));   // overflow
  log.record(make_measurement(4, 0.96, 0.99));
  EXPECT_EQ(log.underflows(), 1u);
  EXPECT_EQ(log.overflows(), 1u);
  EXPECT_NEAR(log.out_of_range_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(MeasurementLog, WorstAndBestByEstimate) {
  MeasurementLog log{7};
  log.record(make_measurement(2, 0.896, 0.929));
  log.record(make_measurement(6, 1.021, 1.053));
  log.record(make_measurement(4, 0.9605, 0.992));
  ASSERT_TRUE(log.worst() && log.best());
  EXPECT_EQ(log.worst()->word.count_ones(), 2u);
  EXPECT_EQ(log.best()->word.count_ones(), 6u);
}

TEST(MeasurementLog, CountsBubbledWords) {
  MeasurementLog log{7};
  Measurement m;
  m.word = ThermoWord::from_string("0101111");
  m.bin.lo = Volt{0.99};
  m.bin.hi = Volt{1.02};
  log.record(m);
  EXPECT_EQ(log.bubbled_words(), 1u);
  // The bubbled word still lands in the popcount-5 bucket.
  EXPECT_EQ(log.count_histogram()[5], 1u);
}

TEST(MeasurementLog, TableHasOneRowPerCount) {
  MeasurementLog log{7};
  log.record(make_measurement(3, 0.93, 0.96));
  const auto table = log.to_table();
  EXPECT_EQ(table.row_count(), 8u);  // counts 0..7
  EXPECT_EQ(table.rows()[3][2], "1");
  EXPECT_EQ(table.rows()[3][1], "0000111");
}

TEST(MeasurementLog, ClearResets) {
  MeasurementLog log{7};
  log.record(make_measurement(3, 0.93, 0.96));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.worst().has_value());
  EXPECT_EQ(log.count_histogram()[3], 0u);
}

TEST(MeasurementLog, RejectsWidthMismatch) {
  MeasurementLog log{7};
  Measurement m;
  m.word = ThermoWord::of_count(2, 5);
  EXPECT_THROW(log.record(m), std::logic_error);
  EXPECT_THROW(MeasurementLog{0}, std::logic_error);
}

TEST(MeasurementLog, EndToEndWithIteratedMeasures) {
  auto thermometer = calib::make_paper_thermometer(calib::calibrated().model);
  analog::CallbackRail vdd{[](Picoseconds t) {
    // Saw-tooth between 0.95 and 1.00 V.
    const double phase = std::fmod(t.value(), 40000.0) / 40000.0;
    return Volt{0.95 + 0.05 * phase};
  }};
  MeasurementLog log{7};
  log.record_all(thermometer.iterate_vdd(analog::RailPair{&vdd, nullptr},
                                         0.0_ps, 7000.0_ps, 40,
                                         core::DelayCode{3}));
  EXPECT_EQ(log.size(), 40u);
  EXPECT_EQ(log.underflows() + log.overflows(), 0u);
  // Readings concentrate in the 0.95–1.00 V bins (counts 3..5).
  const auto& h = log.count_histogram();
  EXPECT_EQ(h[0] + h[1] + h[7], 0u);
  EXPECT_GT(h[3] + h[4] + h[5], 30u);
  EXPECT_LT(log.worst()->bin.estimate().value(),
            log.best()->bin.estimate().value());
}

}  // namespace
}  // namespace psnt::core
