#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "grid/telemetry.h"

namespace psnt::grid {
namespace {

TEST(Telemetry, CounterIsMonotonicAndSharedByName) {
  TelemetryRegistry reg;
  reg.counter("samples").increment();
  reg.counter("samples").increment(9);
  EXPECT_EQ(reg.counter("samples").value(), 10u);
  EXPECT_EQ(reg.counter("other").value(), 0u);
}

TEST(Telemetry, CounterSurvivesConcurrentIncrements) {
  TelemetryRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Lookup + increment from every thread: exercises the registry lock
      // and the atomic counter together.
      for (int i = 0; i < kPerThread; ++i) reg.counter("hits").increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("hits").value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Telemetry, GaugeHoldsLatestValue) {
  TelemetryRegistry reg;
  reg.gauge("depth").set(3.0);
  reg.gauge("depth").set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 1.5);
}

TEST(Telemetry, HistogramTracksStatsAndQuantiles) {
  TelemetryRegistry reg;
  auto& h = reg.histogram("latency_us", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  const auto s = h.stats();
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.mean(), 50.0, 0.01);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_EQ(h.histogram().overflow(), 0u);
}

TEST(Telemetry, SiteRollupMergesAcrossSites) {
  TelemetryRegistry reg;
  auto& r = reg.site_rollup("vdd", 3);
  r.add(0, 1.0);
  r.add(1, 0.9);
  r.add(2, 0.8);
  r.add(2, 0.8);
  EXPECT_EQ(r.site(2).count(), 2u);
  const auto merged = r.merged();
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_NEAR(merged.mean(), (1.0 + 0.9 + 0.8 + 0.8) / 4.0, 1e-12);
  EXPECT_THROW(reg.site_rollup("vdd", 5), std::logic_error);
}

TEST(Telemetry, SnapshotTablesContainEveryInstrument) {
  TelemetryRegistry reg;
  reg.counter("produced").increment(42);
  reg.gauge("depth").set(2.0);
  reg.histogram("lat", 0.0, 10.0, 5).observe(3.0);
  reg.site_rollup("vdd", 2).add(1, 0.95);

  const auto counters = reg.counters_table();
  ASSERT_EQ(counters.row_count(), 2u);  // counter + gauge
  EXPECT_EQ(counters.rows()[0][0], "produced");
  EXPECT_EQ(counters.rows()[0][1], "42");

  const auto hists = reg.histograms_table();
  ASSERT_EQ(hists.row_count(), 1u);
  EXPECT_EQ(hists.rows()[0][0], "lat");
  EXPECT_EQ(hists.rows()[0][1], "1");

  const auto rollups = reg.site_rollups_table();
  ASSERT_EQ(rollups.row_count(), 2u);  // one row per site
  EXPECT_EQ(rollups.rows()[1][2], "1");  // site 1 has the sample

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("produced"), std::string::npos);
  EXPECT_NE(text.str().find("lat"), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("metric,value"), std::string::npos);
  EXPECT_NE(csv.str().find("rollup,site,count"), std::string::npos);
}

TEST(Telemetry, ExportCsvWritesFile) {
  TelemetryRegistry reg;
  reg.counter("c").increment();
  const std::string path = ::testing::TempDir() + "psnt_telemetry_test.csv";
  ASSERT_TRUE(reg.export_csv(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("c,1"), std::string::npos);
  EXPECT_FALSE(reg.export_csv("/nonexistent-dir/x/y.csv"));
}

}  // namespace
}  // namespace psnt::grid
