// Structural LOW-SENSE (GND-n) array: the paper's "PREPARE and SENSE
// conditions are opposite" at gate level, cross-validated against the
// behavioral LS path.
#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/system_builder.h"
#include "core/thermometer.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

struct LsRig {
  sim::Simulator sim;
  analog::ConstantRail vdd_nominal;
  analog::ConstantRail gnd;
  StructuralSensor sensor;
  ControlFsm fsm;
  PulseGenerator pg;

  LsRig(double gnd_volts, DelayCode code)
      : vdd_nominal(1.0_V),
        gnd(Volt{gnd_volts}),
        sensor([&] {
          BuilderOptions opts;
          opts.polarity = SensePolarity::kLowSense;
          return build_structural_sensor(
              sim, "ls", calib::make_paper_array(calib::calibrated().model),
              PulseGenerator{calib::calibrated().model.pg_config()}, code,
              analog::RailPair{&vdd_nominal, &gnd}, opts);
        }()),
        fsm(code),
        pg(calib::calibrated().model.pg_config()) {}

  ThermoWord measure(DelayCode code) {
    return run_structural_measure(sim, sensor, fsm, pg, 2000.0_ps, 1250.0_ps,
                                  code)
        .word;
  }
};

TEST(LowSenseStructural, QuietGroundMatchesOneVoltHighSense) {
  // gnd = 0 → effective overdrive 1.0 V → same word as HS at 1.0 V.
  LsRig rig(0.0, DelayCode{3});
  EXPECT_EQ(rig.measure(DelayCode{3}).to_string(), "0011111");
}

TEST(LowSenseStructural, BounceOf100mVMatchesHighSenseAt900mV) {
  LsRig rig(0.10, DelayCode{3});
  EXPECT_EQ(rig.measure(DelayCode{3}).to_string(), "0000011");
}

TEST(LowSenseStructural, PrepareLoadsOnesNotZeros) {
  // The inverted conditions: PREPARE drives P=0 → DS=1 → Q loaded with 1.
  LsRig rig(0.0, DelayCode{3});
  (void)rig.measure(DelayCode{3});
  for (const auto* ff : rig.sensor.flipflops) {
    ASSERT_EQ(ff->history().size(), 2u);
    EXPECT_TRUE(ff->history()[0].outcome.captured_value);
  }
}

TEST(LowSenseStructural, LateDsKeepsPrepareOne) {
  // Heavy bounce → slow falling DS → setup violated → FF keeps the PREPARE
  // value 1 → read_word flags the bit as error (0).
  LsRig rig(0.16, DelayCode{3});  // v_eff = 0.84 V, near the window floor
  const auto word = rig.measure(DelayCode{3});
  EXPECT_EQ(word.count_ones(), 1u);
  std::size_t violations = 0;
  for (const auto* ff : rig.sensor.flipflops) {
    violations += ff->setup_violations();
  }
  EXPECT_EQ(violations, 6u);
}

// Cross-validation grid against the behavioral GND path.
class LsStructuralVsBehavioral : public ::testing::TestWithParam<int> {};

TEST_P(LsStructuralVsBehavioral, WordsAgree) {
  const double gnd_mv = GetParam();
  const double gnd_volts = gnd_mv / 1000.0;
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);

  const ThermoWord behavioral = array.measure(
      Volt{1.0 - gnd_volts}, model.skew(DelayCode{3}));
  LsRig rig(gnd_volts, DelayCode{3});
  EXPECT_EQ(rig.measure(DelayCode{3}).to_string(), behavioral.to_string())
      << "gnd = " << gnd_volts;
}

INSTANTIATE_TEST_SUITE_P(BounceSweep, LsStructuralVsBehavioral,
                         ::testing::Values(0, 10, 25, 40, 60, 80, 100, 125,
                                           150, 180));

TEST(LowSenseStructural, DecodeGndBracketsTruth) {
  const auto& model = calib::calibrated().model;
  const auto array = calib::make_paper_array(model);
  for (int mv : {5, 30, 70, 110, 150}) {
    const double gnd_volts = mv / 1000.0;
    LsRig rig(gnd_volts, DelayCode{3});
    const auto word = rig.measure(DelayCode{3});
    const auto bin =
        array.decode_gnd(word, model.skew(DelayCode{3}), Volt{1.0});
    if (bin.lo) {
      EXPECT_LE(bin.lo->value(), gnd_volts + 1e-9) << mv;
    }
    if (bin.hi) {
      EXPECT_GT(bin.hi->value(), gnd_volts - 1e-9) << mv;
    }
  }
}

}  // namespace
}  // namespace psnt::core
