#include "analog/rail.h"

#include <gtest/gtest.h>

namespace psnt::analog {
namespace {

using namespace psnt::literals;

TEST(ConstantRail, AlwaysSameValue) {
  ConstantRail rail{1.0_V};
  EXPECT_DOUBLE_EQ(rail.at(0.0_ps).value(), 1.0);
  EXPECT_DOUBLE_EQ(rail.at(1e9_ps).value(), 1.0);
  rail.set(0.95_V);
  EXPECT_DOUBLE_EQ(rail.at(5.0_ps).value(), 0.95);
}

TEST(SampledRail, InterpolatesLinearly) {
  SampledRail rail{0.0_ps, 100.0_ps, {1.0, 0.9, 1.1}};
  EXPECT_DOUBLE_EQ(rail.at(0.0_ps).value(), 1.0);
  EXPECT_DOUBLE_EQ(rail.at(50.0_ps).value(), 0.95);
  EXPECT_DOUBLE_EQ(rail.at(100.0_ps).value(), 0.9);
  EXPECT_DOUBLE_EQ(rail.at(150.0_ps).value(), 1.0);
  EXPECT_DOUBLE_EQ(rail.at(200.0_ps).value(), 1.1);
}

TEST(SampledRail, ClampsOutsideTheWindow) {
  SampledRail rail{1000.0_ps, 10.0_ps, {0.8, 0.9}};
  EXPECT_DOUBLE_EQ(rail.at(0.0_ps).value(), 0.8);     // before start
  EXPECT_DOUBLE_EQ(rail.at(99999.0_ps).value(), 0.9);  // after end
}

TEST(SampledRail, RespectsStartOffset) {
  SampledRail rail{500.0_ps, 100.0_ps, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(rail.at(550.0_ps).value(), 0.5);
}

TEST(SampledRail, RejectsBadConstruction) {
  EXPECT_THROW(SampledRail(0.0_ps, 0.0_ps, {1.0}), std::logic_error);
  EXPECT_THROW(SampledRail(0.0_ps, 10.0_ps, {}), std::logic_error);
}

TEST(CallbackRail, EvaluatesFunction) {
  CallbackRail rail{[](Picoseconds t) {
    return Volt{1.0 - 1e-5 * t.value()};
  }};
  EXPECT_DOUBLE_EQ(rail.at(0.0_ps).value(), 1.0);
  EXPECT_NEAR(rail.at(1000.0_ps).value(), 0.99, 1e-12);
}

TEST(RailPair, EffectiveIsVddMinusGnd) {
  ConstantRail vdd{1.0_V};
  ConstantRail gnd{0.04_V};
  RailPair pair{&vdd, &gnd};
  EXPECT_NEAR(pair.effective(0.0_ps).value(), 0.96, 1e-12);
}

TEST(RailPair, MissingGndMeansIdealGround) {
  ConstantRail vdd{1.05_V};
  RailPair pair{&vdd, nullptr};
  EXPECT_DOUBLE_EQ(pair.effective(0.0_ps).value(), 1.05);
}

TEST(RailPair, MissingVddIsAnError) {
  RailPair pair{nullptr, nullptr};
  EXPECT_THROW((void)pair.effective(0.0_ps), std::logic_error);
}

TEST(RailPair, TimeVaryingBothRails) {
  CallbackRail vdd{[](Picoseconds t) {
    return Volt{1.0 - 1e-4 * t.value()};
  }};
  CallbackRail gnd{[](Picoseconds t) {
    return Volt{0.0 + 5e-5 * t.value()};
  }};
  RailPair pair{&vdd, &gnd};
  EXPECT_NEAR(pair.effective(100.0_ps).value(), 1.0 - 0.01 - 0.005, 1e-12);
}

}  // namespace
}  // namespace psnt::analog
