// StreamingEncoder / DecodeLadder: the drain-pass half of the streaming
// raw-word pipeline. The load-bearing property is bit-identity: every
// encoded field must match core::Encoder::encode, and every ladder decode
// must match the engine/kernel decode the legacy per-site path used.
#include "core/streaming_encoder.h"

#include <gtest/gtest.h>

#include <vector>

#include "analog/rail.h"
#include "calib/fit.h"
#include "core/measure_engine.h"
#include "core/sense_kernel.h"
#include "stats/rng.h"

namespace psnt::core {
namespace {

constexpr BubblePolicy kAllPolicies[] = {
    BubblePolicy::kReject, BubblePolicy::kMajority, BubblePolicy::kFirstZero};

void expect_identical(const EncodedWord& a, const EncodedWord& b,
                      const ThermoWord& word, BubblePolicy policy) {
  EXPECT_EQ(a.count, b.count) << word.to_string() << " " << to_string(policy);
  EXPECT_EQ(a.binary, b.binary) << word.to_string();
  EXPECT_EQ(a.valid, b.valid) << word.to_string() << " " << to_string(policy);
  EXPECT_EQ(a.bubble_errors, b.bubble_errors) << word.to_string();
  EXPECT_EQ(a.underflow, b.underflow) << word.to_string();
  EXPECT_EQ(a.overflow, b.overflow) << word.to_string();
}

TEST(StreamingEncoder, BitIdenticalToEncoderOnRandomStreams) {
  // Uniform random bit patterns at several widths: most are heavily bubbled,
  // which is exactly the regime where the amortized bubble bookkeeping could
  // diverge from the reference.
  for (const auto policy : kAllPolicies) {
    Encoder reference{policy};
    StreamingEncoder streaming{policy};
    stats::SplitMix64 rng(42);
    for (const std::size_t width : {std::size_t{7}, std::size_t{13},
                                    std::size_t{32}}) {
      for (int i = 0; i < 2000; ++i) {
        std::uint32_t bits = static_cast<std::uint32_t>(rng.next());
        if (width < 32) bits &= (1u << width) - 1u;
        const ThermoWord word{bits, width};
        expect_identical(streaming.encode(word), reference.encode(word), word,
                         policy);
      }
    }
  }
}

TEST(StreamingEncoder, BitIdenticalOnCanonicalAndEdgeWords) {
  for (const auto policy : kAllPolicies) {
    Encoder reference{policy};
    StreamingEncoder streaming{policy};
    const std::size_t width = 7;
    // Every canonical count, including underflow (0) and overflow (width).
    for (std::size_t ones = 0; ones <= width; ++ones) {
      const auto word = ThermoWord::of_count(ones, width);
      expect_identical(streaming.encode(word), reference.encode(word), word,
                       policy);
    }
    // All-bubble worst cases: alternating patterns and the bubble-at-bit-0
    // word that makes kFirstZero read zero.
    for (const char* s : {"1010101", "0101010", "1111110", "1000000"}) {
      const auto word = ThermoWord::from_string(s);
      expect_identical(streaming.encode(word), reference.encode(word), word,
                       policy);
    }
  }
}

TEST(StreamingEncoder, EncodeSpanMatchesPerWordEncode) {
  stats::SplitMix64 rng(7);
  std::vector<ThermoWord> words;
  for (int i = 0; i < 257; ++i) {
    words.emplace_back(static_cast<std::uint32_t>(rng.next()) & 0x7Fu,
                       std::size_t{7});
  }
  for (const auto policy : kAllPolicies) {
    Encoder reference{policy};
    StreamingEncoder streaming{policy};
    std::vector<EncodedWord> out(words.size());
    streaming.encode_span(words.data(), words.size(), out.data());
    for (std::size_t i = 0; i < words.size(); ++i) {
      expect_identical(out[i], reference.encode(words[i]), words[i], policy);
    }
  }
}

TEST(StreamingEncoder, RunningStatsTally) {
  StreamingEncoder enc{BubblePolicy::kMajority};
  (void)enc.encode(ThermoWord::of_count(0, 7));  // underflow
  (void)enc.encode(ThermoWord::of_count(7, 7));  // overflow
  (void)enc.encode(ThermoWord::of_count(4, 7));  // clean mid-range
  (void)enc.encode(ThermoWord::from_string("0101111"));  // 2 bubble bits

  const StreamingEncodeStats& st = enc.stats();
  EXPECT_EQ(st.words, 4u);
  EXPECT_EQ(st.underflows, 1u);
  EXPECT_EQ(st.overflows, 1u);
  EXPECT_EQ(st.bubbled_words, 1u);
  EXPECT_EQ(st.bubble_errors, 2u);
  EXPECT_EQ(st.rejected, 0u);

  enc.reset_stats();
  EXPECT_EQ(enc.stats().words, 0u);
}

TEST(StreamingEncoder, RejectPolicyCountsRejectedWords) {
  StreamingEncoder enc{BubblePolicy::kReject};
  (void)enc.encode(ThermoWord::from_string("0011111"));  // valid
  (void)enc.encode(ThermoWord::from_string("0101111"));  // bubbled -> reject
  EXPECT_EQ(enc.stats().rejected, 1u);
}

TEST(DecodeLadder, BitIdenticalToKernelDecodeAcrossAllCodes) {
  const auto& model = calib::calibrated().model;
  const SensorArray array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  const DecodeLadder ladder = calib::make_paper_decode_ladder(model);
  BatchedSenseKernel kernel{array};

  ASSERT_EQ(ladder.bits(), array.bits());
  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const DelayCode code{c};
    for (std::size_t ones = 0; ones <= array.bits(); ++ones) {
      const auto word = ThermoWord::of_count(ones, array.bits());
      const VoltageBin a = ladder.decode(word, code);
      const VoltageBin b = kernel.decode(array, word, code, pg.skew(code));
      ASSERT_EQ(a.lo.has_value(), b.lo.has_value());
      ASSERT_EQ(a.hi.has_value(), b.hi.has_value());
      if (a.lo) EXPECT_EQ(a.lo->value(), b.lo->value()) << "code " << int(c);
      if (a.hi) EXPECT_EQ(a.hi->value(), b.hi->value()) << "code " << int(c);
    }
  }
}

TEST(DecodeLadder, BubbledWordDecodesLikeItsCorrectedForm) {
  const auto& model = calib::calibrated().model;
  const DecodeLadder ladder = calib::make_paper_decode_ladder(model);
  const DelayCode code{3};
  const auto bubbled = ThermoWord::from_string("0101111");
  const auto corrected = bubbled.bubble_corrected();
  const VoltageBin a = ladder.decode(bubbled, code);
  const VoltageBin b = ladder.decode(corrected, code);
  EXPECT_EQ(a.lo->value(), b.lo->value());
  EXPECT_EQ(a.hi->value(), b.hi->value());
}

TEST(DecodeLadder, GndDecodeMirrorsKernel) {
  const auto& model = calib::calibrated().model;
  const SensorArray array = calib::make_paper_array(model);
  const PulseGenerator pg{model.pg_config()};
  const DecodeLadder ladder = calib::make_paper_decode_ladder(model);
  BatchedSenseKernel kernel{array};
  const Volt v_nom{1.0};
  for (std::size_t ones = 0; ones <= array.bits(); ++ones) {
    const auto word = ThermoWord::of_count(ones, array.bits());
    const DelayCode code{2};
    const VoltageBin a = ladder.decode_gnd(word, code, v_nom);
    const VoltageBin b =
        kernel.decode_gnd(array, word, code, pg.skew(code), v_nom);
    ASSERT_EQ(a.lo.has_value(), b.lo.has_value());
    ASSERT_EQ(a.hi.has_value(), b.hi.has_value());
    if (a.lo) EXPECT_EQ(a.lo->value(), b.lo->value());
    if (a.hi) EXPECT_EQ(a.hi->value(), b.hi->value());
  }
}

// The ladder also matches the behavioral engine's own VDD decode — the exact
// comparison the grid's drain pass relies on.
TEST(DecodeLadder, MatchesBehavioralEngineDecode) {
  const auto& model = calib::calibrated().model;
  BehavioralEngine engine = calib::make_paper_engine(model);
  const DecodeLadder ladder = calib::make_paper_decode_ladder(model);
  for (std::uint8_t c = 0; c < DelayCode::kCount; ++c) {
    const DelayCode code{c};
    for (std::size_t ones = 0; ones <= engine.word_bits(); ++ones) {
      const auto word = ThermoWord::of_count(ones, engine.word_bits());
      const VoltageBin a = ladder.decode(word, code);
      const VoltageBin b = engine.decode(word, code);
      ASSERT_EQ(a.lo.has_value(), b.lo.has_value());
      ASSERT_EQ(a.hi.has_value(), b.hi.has_value());
      if (a.lo) EXPECT_EQ(a.lo->value(), b.lo->value());
      if (a.hi) EXPECT_EQ(a.hi->value(), b.hi->value());
    }
  }
}

// Capture half of the split: measure_raw carries exactly the word, code,
// target and launch instant that measure() would have produced, and the
// ladder turns it into the same bin — i.e. raw capture + drain decode
// reassembles the full Measurement bit-for-bit.
TEST(RawPath, BehavioralMeasureRawPlusLadderReassemblesMeasure) {
  const auto& model = calib::calibrated().model;
  BehavioralEngine full = calib::make_paper_engine(model);
  BehavioralEngine raw_engine = calib::make_paper_engine(model);
  const DecodeLadder ladder = calib::make_paper_decode_ladder(model);
  const analog::ConstantRail rail{Volt{0.95}};
  const analog::RailPair rails{&rail, nullptr};

  for (int k = 0; k < 4; ++k) {
    MeasureRequest req;
    req.start = Picoseconds{static_cast<double>(k) * 10000.0};
    const Measurement m = full.measure(req, rails);
    const RawSample raw = raw_engine.measure_raw(req, rails);
    EXPECT_EQ(raw.word, m.word);
    EXPECT_EQ(raw.code, m.code);
    EXPECT_EQ(raw.target, m.target);
    EXPECT_EQ(raw.timestamp.value(), m.timestamp.value());
    EXPECT_EQ(raw.site_id, 0u);        // engines leave transport fields zero
    EXPECT_EQ(raw.sample_index, 0u);

    const Measurement rebuilt =
        assemble_measurement(raw, ladder.decode(raw.word, raw.code));
    EXPECT_EQ(rebuilt.word, m.word);
    ASSERT_EQ(rebuilt.bin.lo.has_value(), m.bin.lo.has_value());
    ASSERT_EQ(rebuilt.bin.hi.has_value(), m.bin.hi.has_value());
    if (m.bin.lo) EXPECT_EQ(rebuilt.bin.lo->value(), m.bin.lo->value());
    if (m.bin.hi) EXPECT_EQ(rebuilt.bin.hi->value(), m.bin.hi->value());
  }
}

// Type-erased handles advertise and honor the raw capability; the default
// IMeasureEngine fallback (derive from measure()) matches too.
TEST(RawPath, EngineHandleRawBatchMatchesMeasureBatch) {
  const auto& model = calib::calibrated().model;
  const analog::ConstantRail rail{Volt{0.95}};
  const analog::RailPair rails{&rail, nullptr};
  EngineSiteOptions options;
  EngineHandle a = make_behavioral_engine(calib::make_paper_engine(model),
                                          rails, options);
  EngineHandle b = make_behavioral_engine(calib::make_paper_engine(model),
                                          rails, options);
  ASSERT_TRUE(a->supports_raw_samples());

  MeasureRequest first;
  first.start = Picoseconds{0.0};
  std::vector<Measurement> ms;
  a->measure_batch(first, Picoseconds{10000.0}, 5, ms);
  std::vector<RawSample> raws;
  b->measure_raw_batch(first, Picoseconds{10000.0}, 5, raws);
  ASSERT_EQ(ms.size(), raws.size());
  for (std::size_t k = 0; k < ms.size(); ++k) {
    EXPECT_EQ(raws[k].word, ms[k].word) << "sample " << k;
    EXPECT_EQ(raws[k].code, ms[k].code);
    EXPECT_EQ(raws[k].timestamp.value(), ms[k].timestamp.value());
  }
}

}  // namespace
}  // namespace psnt::core
