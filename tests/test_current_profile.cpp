#include "psn/current_profile.h"

#include <gtest/gtest.h>

namespace psnt::psn {
namespace {

using namespace psnt::literals;

TEST(CurrentProfile, ConstantAlwaysSame) {
  ConstantCurrent c{Ampere{1.5}};
  EXPECT_DOUBLE_EQ(c.at(0.0_ps).value(), 1.5);
  EXPECT_DOUBLE_EQ(c.at(1e9_ps).value(), 1.5);
}

TEST(CurrentProfile, IdealStep) {
  StepCurrent s{Ampere{0.5}, Ampere{2.5}, 1000.0_ps};
  EXPECT_DOUBLE_EQ(s.at(999.0_ps).value(), 0.5);
  EXPECT_DOUBLE_EQ(s.at(1000.0_ps).value(), 2.5);
}

TEST(CurrentProfile, RampedStepInterpolates) {
  StepCurrent s{Ampere{0.0}, Ampere{2.0}, 1000.0_ps, 200.0_ps};
  EXPECT_DOUBLE_EQ(s.at(1000.0_ps).value(), 0.0);
  EXPECT_DOUBLE_EQ(s.at(1100.0_ps).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1200.0_ps).value(), 2.0);
  EXPECT_DOUBLE_EQ(s.at(5000.0_ps).value(), 2.0);
}

TEST(CurrentProfile, SquareWavePhases) {
  SquareWaveCurrent sq{Ampere{0.1}, Ampere{1.1}, 1000.0_ps, 0.25};
  EXPECT_DOUBLE_EQ(sq.at(0.0_ps).value(), 1.1);     // first 25%
  EXPECT_DOUBLE_EQ(sq.at(240.0_ps).value(), 1.1);
  EXPECT_DOUBLE_EQ(sq.at(260.0_ps).value(), 0.1);
  EXPECT_DOUBLE_EQ(sq.at(1100.0_ps).value(), 1.1);  // next period
  SquareWaveCurrent delayed{Ampere{0.0}, Ampere{1.0}, 1000.0_ps, 0.5,
                            500.0_ps};
  EXPECT_DOUBLE_EQ(delayed.at(100.0_ps).value(), 0.0);  // before t0
}

TEST(CurrentProfile, SquareWaveValidation) {
  EXPECT_THROW(SquareWaveCurrent(Ampere{0}, Ampere{1}, 0.0_ps, 0.5),
               std::logic_error);
  EXPECT_THROW(SquareWaveCurrent(Ampere{0}, Ampere{1}, 10.0_ps, 1.5),
               std::logic_error);
}

TEST(CurrentProfile, TracePerCycleLookup) {
  TraceCurrent t{100.0_ps, {0.1, 0.2, 0.3}};
  EXPECT_EQ(t.cycles(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0.0_ps).value(), 0.1);
  EXPECT_DOUBLE_EQ(t.at(150.0_ps).value(), 0.2);
  EXPECT_DOUBLE_EQ(t.at(250.0_ps).value(), 0.3);
  // Past the end: holds the last cycle.
  EXPECT_DOUBLE_EQ(t.at(10000.0_ps).value(), 0.3);
}

TEST(CurrentProfile, CompositeSums) {
  CompositeCurrent comp;
  comp.add(std::make_unique<ConstantCurrent>(Ampere{0.5}));
  comp.add(std::make_unique<StepCurrent>(Ampere{0.0}, Ampere{1.0},
                                         100.0_ps));
  EXPECT_EQ(comp.parts(), 2u);
  EXPECT_DOUBLE_EQ(comp.at(50.0_ps).value(), 0.5);
  EXPECT_DOUBLE_EQ(comp.at(150.0_ps).value(), 1.5);
  EXPECT_THROW(comp.add(nullptr), std::logic_error);
}

TEST(CurrentProfile, Callback) {
  CallbackCurrent c{[](Picoseconds t) { return Ampere{t.value() * 1e-3}; }};
  EXPECT_DOUBLE_EQ(c.at(500.0_ps).value(), 0.5);
}

}  // namespace
}  // namespace psnt::psn
