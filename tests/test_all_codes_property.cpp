// Whole-family property sweep: every Delay Code obeys the thermometer
// invariants with the paper-calibrated array.
#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/resolution.h"
#include "core/sensor_array.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

class EveryCode : public ::testing::TestWithParam<int> {
 protected:
  const calib::CalibratedModel& model = calib::calibrated().model;
  SensorArray array = calib::make_paper_array(model);
  PulseGenerator pg{model.pg_config()};
  DelayCode code{static_cast<std::uint8_t>(GetParam())};
};

TEST_P(EveryCode, WordsAreValidAndMonotoneInVoltage) {
  // Sweep past both window edges (code 000's window tops out near 1.6 V).
  const auto range = array.dynamic_range(pg.skew(code));
  const double lo = range.all_errors_below.value() - 0.05;
  const double hi = range.no_errors_above.value() + 0.05;
  std::size_t prev = 0;
  for (double v = lo; v <= hi; v += 0.005) {
    const auto word = array.measure(Volt{v}, pg.skew(code));
    ASSERT_TRUE(word.is_valid_thermometer())
        << "code " << code.to_string() << " V=" << v;
    ASSERT_GE(word.count_ones(), prev);
    prev = word.count_ones();
  }
  EXPECT_EQ(prev, 7u);
}

TEST_P(EveryCode, DecodeBracketsEveryInRangeVoltage) {
  const auto range = array.dynamic_range(pg.skew(code));
  const double lo = range.all_errors_below.value() + 0.005;
  const double hi = range.no_errors_above.value() - 0.005;
  for (double v = lo; v <= hi; v += (hi - lo) / 23.0) {
    const auto bin = array.decode(array.measure(Volt{v}, pg.skew(code)),
                                  pg.skew(code));
    ASSERT_TRUE(bin.lo || bin.hi);
    if (bin.lo) {
      EXPECT_LE(bin.lo->value(), v + 1e-9) << code.to_string();
    }
    if (bin.hi) {
      EXPECT_GT(bin.hi->value(), v - 1e-9) << code.to_string();
    }
  }
}

TEST_P(EveryCode, ThresholdsAscendWithLoad) {
  const auto thr = array.thresholds(pg.skew(code));
  for (std::size_t i = 1; i < thr.size(); ++i) {
    EXPECT_GT(thr[i], thr[i - 1]) << code.to_string();
  }
}

TEST_P(EveryCode, ResolutionReportConsistent) {
  const auto rep = analyze_resolution(array, pg, code);
  EXPECT_GT(rep.best_lsb_mv, 0.0);
  EXPECT_GE(rep.worst_lsb_mv, rep.best_lsb_mv);
  double sum = 0.0;
  for (double g : rep.lsb_mv) sum += g;
  EXPECT_NEAR(sum / 1000.0, rep.range.span().value(), 1e-9);
}

TEST_P(EveryCode, GndViewMirrorsVddView) {
  const Volt v_nom{1.0};
  const auto word = array.measure(0.95_V, pg.skew(code));
  const auto vdd_bin = array.decode(word, pg.skew(code));
  const auto gnd_bin = array.decode_gnd(word, pg.skew(code), v_nom);
  if (vdd_bin.lo && gnd_bin.hi) {
    EXPECT_NEAR(gnd_bin.hi->value(), 1.0 - vdd_bin.lo->value(), 1e-12);
  }
  if (vdd_bin.hi && gnd_bin.lo) {
    EXPECT_NEAR(gnd_bin.lo->value(), 1.0 - vdd_bin.hi->value(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, EveryCode, ::testing::Range(0, 8));

}  // namespace
}  // namespace psnt::core
