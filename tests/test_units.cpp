#include "util/units.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psnt {
namespace {

using namespace psnt::literals;

TEST(Units, LiteralsConstructExpectedValues) {
  EXPECT_DOUBLE_EQ((1.0_V).value(), 1.0);
  EXPECT_DOUBLE_EQ((950.0_mV).value(), 0.95);
  EXPECT_DOUBLE_EQ((65.0_ps).value(), 65.0);
  EXPECT_DOUBLE_EQ((1.22_ns).value(), 1220.0);
  EXPECT_DOUBLE_EQ((2.0_pF).value(), 2.0);
  EXPECT_DOUBLE_EQ((150.0_fF).value(), 0.15);
  EXPECT_DOUBLE_EQ((25.0_degC).value(), 25.0);
  EXPECT_DOUBLE_EQ((3.5_mA).value(), 0.0035);
}

TEST(Units, IntegerLiterals) {
  EXPECT_DOUBLE_EQ((1_V).value(), 1.0);
  EXPECT_DOUBLE_EQ((65_ps).value(), 65.0);
  EXPECT_DOUBLE_EQ((2_pF).value(), 2.0);
}

TEST(Units, ArithmeticWithinOneDimension) {
  const Volt a{1.0};
  const Volt b{0.2};
  EXPECT_DOUBLE_EQ((a + b).value(), 1.2);
  EXPECT_DOUBLE_EQ((a - b).value(), 0.8);
  EXPECT_DOUBLE_EQ((-b).value(), -0.2);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 3.0);
  EXPECT_DOUBLE_EQ((3.0 * a).value(), 3.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(a / b, 5.0);  // ratio is dimensionless
}

TEST(Units, CompoundAssignment) {
  Picoseconds t{10.0};
  t += Picoseconds{5.0};
  EXPECT_DOUBLE_EQ(t.value(), 15.0);
  t -= Picoseconds{3.0};
  EXPECT_DOUBLE_EQ(t.value(), 12.0);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 24.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Volt{0.9}, Volt{1.0});
  EXPECT_GT(Picoseconds{65}, Picoseconds{50});
  EXPECT_EQ(Picofarad{2.0}, Picofarad{2.0});
  EXPECT_LE(Volt{1.0}, Volt{1.0});
}

TEST(Units, OhmsLawProduct) {
  const Volt v = Ampere{2.0} * Ohm{0.004};
  EXPECT_DOUBLE_EQ(v.value(), 0.008);
  EXPECT_DOUBLE_EQ((Ohm{0.004} * Ampere{2.0}).value(), 0.008);
}

TEST(Units, StreamingIncludesUnitSuffix) {
  std::ostringstream os;
  os << Volt{1.05} << " / " << Picoseconds{65} << " / " << Picofarad{2};
  EXPECT_EQ(os.str(), "1.05 V / 65 ps / 2 pF");
}

TEST(Units, NearComparison) {
  EXPECT_TRUE(near(Volt{1.000}, Volt{1.0005}, Volt{0.001}));
  EXPECT_FALSE(near(Volt{1.000}, Volt{1.002}, Volt{0.001}));
  EXPECT_TRUE(near(Picoseconds{65.0}, Picoseconds{65.4}, Picoseconds{0.5}));
}

}  // namespace
}  // namespace psnt
