// Conformance suite for the netlist lowering pass (sim/lower): the compiled
// kernel must be bit-identical to the event-driven scheduler on every netlist
// it accepts, and must refuse every netlist it cannot prove equivalent.
//
// The core harness is a twin-simulator rig: the same builder elaborates two
// Simulator instances (identical net ids), one runs event-driven as the
// oracle, the other is lowered; identical stimuli are applied to both and
// every net is compared at every checkpoint.
#include "sim/lower.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "analog/flipflop_model.h"
#include "analog/rail.h"
#include "analog/supply_delay_model.h"
#include "calib/fit.h"
#include "core/full_system.h"
#include "sim/dff.h"
#include "sim/gates.h"
#include "sim/supply_inverter.h"
#include <cmath>

namespace psnt::sim {
namespace {

using namespace psnt::literals;

struct Twin {
  Simulator event;     // oracle
  Simulator compiled;  // lowered after settle
  std::unique_ptr<CompiledKernel> kernel;

  // Elaborates both simulators via the same builder. The builder must be
  // deterministic so the two netlists have identical net ids.
  void build(const std::function<void(Simulator&)>& builder) {
    builder(event);
    builder(compiled);
    ASSERT_EQ(event.net_count(), compiled.net_count());
  }

  void drive_both(std::size_t net_id, Picoseconds at, Logic v) {
    event.drive(event.net_at(net_id), at, v);
    kernel->drive(compiled.net_at(net_id), at, v);
  }

  // Settles both sims (initial drives applied by the builder) and lowers the
  // compiled twin. Call between build() and the stimulus phase.
  void settle_and_compile() {
    event.run_all();
    compiled.run_all();
    kernel = CompiledKernel::compile(compiled);
    ASSERT_NE(kernel, nullptr) << "lowering refused a loweable netlist";
  }

  void check_all_nets(Picoseconds t, const char* context) {
    event.run_until(t);
    kernel->run_until(t);
    for (std::size_t i = 0; i < event.net_count(); ++i) {
      const Net& e = event.net_at(i);
      const Net& c = compiled.net_at(i);
      ASSERT_EQ(e.value(), c.value())
          << context << ": net '" << e.name() << "' diverged at t=" << t;
      ASSERT_EQ(e.last_change(), c.last_change())
          << context << ": net '" << e.name() << "' last_change diverged at t="
          << t;
    }
  }
};

// Random DAG of stock gates and flops clocked from a shared clk input.
// Returns the primary-input net ids (clk is inputs.front()).
std::vector<std::size_t> build_random_netlist(Simulator& sim,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  std::vector<std::size_t> input_ids;
  std::vector<Net*> pool;  // nets usable as gate inputs

  Net& clk = sim.net("clk");
  input_ids.push_back(clk.id());
  const std::size_t n_inputs = 3 + pick(3);  // 3..5 data inputs
  for (std::size_t i = 0; i < n_inputs; ++i) {
    Net& in = sim.net("in" + std::to_string(i));
    input_ids.push_back(in.id());
    pool.push_back(&in);
  }

  const std::size_t n_gates = 20 + pick(20);
  for (std::size_t g = 0; g < n_gates; ++g) {
    const std::string id = std::to_string(g);
    Net& y = sim.net("y" + id);
    // Random per-instance delays keep arrival times heterogeneous, which is
    // what exercises the kernel's wave merging and inertial cancellation.
    const Picoseconds d{3.0 + static_cast<double>(pick(40))};
    Net& a = *pool[pick(pool.size())];
    Net& b = *pool[pick(pool.size())];
    switch (pick(8)) {
      case 0: sim.add<InvGate>("g" + id, a, y, d); break;
      case 1: sim.add<BufGate>("g" + id, a, y, d); break;
      case 2: sim.add<Nand2Gate>("g" + id, a, b, y, d); break;
      case 3: sim.add<Nor2Gate>("g" + id, a, b, y, d); break;
      case 4: sim.add<And2Gate>("g" + id, a, b, y, d); break;
      case 5: sim.add<Xor2Gate>("g" + id, a, b, y, d); break;
      case 6: {
        Net& s = *pool[pick(pool.size())];
        sim.add<Mux2Gate>("g" + id, a, b, s, y, d);
        break;
      }
      default: sim.add<Or2Gate>("g" + id, a, b, y, d); break;
    }
    pool.push_back(&y);
  }

  const std::size_t n_ffs = 2 + pick(3);
  for (std::size_t f = 0; f < n_ffs; ++f) {
    Net& q = sim.net("q" + std::to_string(f));
    sim.add<DFlipFlop>("ff" + std::to_string(f), *pool[pick(pool.size())],
                       clk, q, analog::FlipFlopTimingModel{});
    pool.push_back(&q);  // state feeds back into downstream logic
  }
  // A little post-FF logic so Q transitions cascade combinationally.
  Net& tail = sim.net("tail");
  sim.add<Xor2Gate>("gtail", *pool[pool.size() - 1], *pool[pool.size() - 2],
                    tail, Picoseconds{7.0});

  // Power-on: drive everything known at t=0 so the settle is deterministic.
  for (const std::size_t id : input_ids) {
    sim.drive(sim.net_at(id), 0.0_ps, Logic::L0);
  }
  return input_ids;
}

TEST(CompileLowering, RandomNetlistsMatchEventDrivenBitForBit) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Twin twin;
    std::vector<std::size_t> inputs;
    twin.build([&](Simulator& sim) {
      auto ids = build_random_netlist(sim, seed);
      if (inputs.empty()) inputs = ids;
    });
    twin.settle_and_compile();

    // Random stimulus: jittered clock plus data edges, checkpointing after
    // every burst. Time marches strictly forward.
    std::mt19937_64 rng(seed * 7919 + 1);
    auto pick = [&](std::uint64_t n) {
      return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(rng);
    };
    double t = 2000.0;
    for (int burst = 0; burst < 30; ++burst) {
      const std::size_t n_edges = 1 + pick(4);
      for (std::size_t k = 0; k < n_edges; ++k) {
        t += 1.0 + static_cast<double>(pick(300));
        const std::size_t which = pick(inputs.size());
        const Logic v = pick(2) == 0 ? Logic::L0 : Logic::L1;
        twin.drive_both(inputs[which], Picoseconds{t}, v);
      }
      t += 600.0;  // long enough for every cascade to drain
      twin.check_all_nets(Picoseconds{t},
                          ("seed " + std::to_string(seed)).c_str());
    }
    EXPECT_GT(twin.kernel->gate_evals(), 0u);
  }
}

TEST(CompileLowering, XPropagatesFromUndrivenInputs) {
  Twin twin;
  std::vector<std::size_t> ids;
  twin.build([&](Simulator& sim) {
    Net& clk = sim.net("clk");
    Net& d = sim.net("d");  // never driven: stays X
    Net& q = sim.net("q");
    Net& y = sim.net("y");
    sim.add<DFlipFlop>("ff", d, clk, q, analog::FlipFlopTimingModel{});
    sim.add<InvGate>("g1", q, y, 5.0_ps);
    sim.drive(clk, 0.0_ps, Logic::L0);
    if (ids.empty()) ids = {clk.id(), q.id(), y.id()};
  });
  twin.settle_and_compile();

  // Clock through an X data input: Q must go X, the inverter keeps it X.
  twin.drive_both(ids[0], 1000.0_ps, Logic::L1);
  twin.drive_both(ids[0], 2000.0_ps, Logic::L0);
  twin.check_all_nets(3000.0_ps, "x-prop");
  EXPECT_EQ(twin.compiled.net_at(ids[1]).value(), Logic::X);
  EXPECT_EQ(twin.compiled.net_at(ids[2]).value(), Logic::X);
}

// Sweeps the D arrival across the sampling edge: clean capture, metastable
// band (degraded clk-to-q), setup violation (old value retained), plus a hold
// violation. The compiled kernel must reproduce the exact outcome *and* the
// exact Q transition time in every region.
TEST(CompileLowering, DffEdgeOrderingAcrossSetupHoldWindows) {
  const analog::FlipFlopParams params{};  // setup 35ps, hold 10ps, w 10ps
  for (double d_lead = 60.0; d_lead >= -20.0; d_lead -= 2.5) {
    Twin twin;
    std::vector<std::size_t> ids;
    twin.build([&](Simulator& sim) {
      Net& d = sim.net("d");
      Net& clk = sim.net("clk");
      Net& q = sim.net("q");
      sim.add<DFlipFlop>("ff", d, clk, q,
                         analog::FlipFlopTimingModel{params});
      sim.drive(d, 0.0_ps, Logic::L0);
      sim.drive(clk, 0.0_ps, Logic::L0);
      if (ids.empty()) ids = {d.id(), clk.id(), q.id()};
    });
    twin.settle_and_compile();

    const double edge = 5000.0;
    // D rises d_lead ps before the edge (negative: after the edge → hold
    // territory when inside the window).
    twin.drive_both(ids[0], Picoseconds{edge - d_lead}, Logic::L1);
    twin.drive_both(ids[1], Picoseconds{edge}, Logic::L1);
    twin.check_all_nets(Picoseconds{edge + 1000.0},
                        ("d_lead=" + std::to_string(d_lead)).c_str());
  }
}

TEST(CompileLowering, RefusesNonQuiescentScheduler) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  sim.add<InvGate>("g", a, y, 10.0_ps);
  sim.drive(a, 100.0_ps, Logic::L1);  // in flight
  EXPECT_EQ(CompiledKernel::compile(sim), nullptr);
  sim.run_all();
  EXPECT_NE(CompiledKernel::compile(sim), nullptr);
}

TEST(CompileLowering, RefusesExternalListeners) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  sim.add<InvGate>("g", a, y, 10.0_ps);
  y.on_change([](const Net&, Logic, Logic, SimTime) {});  // a probe
  EXPECT_EQ(CompiledKernel::compile(sim), nullptr);
}

TEST(CompileLowering, RefusesCombinationalCycles) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  sim.add<InvGate>("g0", a, b, 10.0_ps);
  sim.add<InvGate>("g1", b, a, 10.0_ps);  // ring oscillator
  EXPECT_EQ(CompiledKernel::compile(sim), nullptr);
}

TEST(CompileLowering, RefusesMultiDrivenNets) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  Net& y = sim.net("y");
  sim.add<InvGate>("g0", a, y, 10.0_ps);
  sim.add<InvGate>("g1", b, y, 12.0_ps);
  EXPECT_EQ(CompiledKernel::compile(sim), nullptr);
}

TEST(CompileLowering, StaleTopologyIsDetectable) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  sim.add<InvGate>("g", a, y, 10.0_ps);
  auto kernel = CompiledKernel::compile(sim);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->topology_version(), sim.topology_version());
  Net& z = sim.net("z");
  sim.add<InvGate>("g2", y, z, 10.0_ps);
  EXPECT_NE(kernel->topology_version(), sim.topology_version());
}

TEST(CompileLowering, SupplyInverterDelayTracksRail) {
  // A time-varying rail: the kernel evaluates the supply-sensitive delay at
  // the input arrival time, exactly like the event-driven component.
  analog::CallbackRail vdd{[](Picoseconds t) {
    return Volt{1.0 - 0.08 * std::sin(t.value() / 700.0)};
  }};
  Twin twin;
  std::vector<std::size_t> ids;
  twin.build([&](Simulator& sim) {
    Net& a = sim.net("a");
    Net& pre = sim.net("pre");
    Net& y = sim.net("y");
    sim.add<BufGate>("g0", a, pre, 9.0_ps);
    sim.add<SupplyInverter>("si", pre, y, analog::AlphaPowerDelayModel{},
                            analog::RailPair{&vdd, nullptr}, 2.0_pF);
    sim.drive(a, 0.0_ps, Logic::L1);  // DS settles low
    if (ids.empty()) ids = {a.id(), y.id()};
  });
  twin.settle_and_compile();
  ASSERT_EQ(twin.kernel->stats().supply_inverters, 1u);

  double t = 1000.0;
  for (int i = 0; i < 40; ++i) {
    const Logic v = (i % 2 == 0) ? Logic::L0 : Logic::L1;
    twin.drive_both(ids[0], Picoseconds{t}, v);
    t += 431.0;  // long enough for the (slow) sense edge to land
    twin.check_all_nets(Picoseconds{t}, "supply-inverter");
  }
}

TEST(CompileLowering, GlitchSuppressionMatches) {
  // A pulse shorter than the gate delay must be swallowed identically.
  Twin twin;
  std::vector<std::size_t> ids;
  twin.build([&](Simulator& sim) {
    Net& a = sim.net("a");
    Net& y = sim.net("y");
    Net& z = sim.net("z");
    sim.add<BufGate>("g0", a, y, 50.0_ps);
    sim.add<InvGate>("g1", y, z, 30.0_ps);
    sim.drive(a, 0.0_ps, Logic::L0);
    if (ids.empty()) ids = {a.id(), y.id(), z.id()};
  });
  twin.settle_and_compile();

  // 20ps pulse into a 50ps buffer: cancelled in flight.
  twin.drive_both(ids[0], 1000.0_ps, Logic::L1);
  twin.drive_both(ids[0], 1020.0_ps, Logic::L0);
  twin.check_all_nets(1500.0_ps, "glitch");
  EXPECT_EQ(twin.compiled.net_at(ids[1]).value(), Logic::L0);

  // 80ps pulse: propagates, and the downstream inverter sees both edges.
  twin.drive_both(ids[0], 2000.0_ps, Logic::L1);
  twin.drive_both(ids[0], 2080.0_ps, Logic::L0);
  twin.check_all_nets(2049.0_ps, "mid-pulse");  // y high, z not yet
  twin.check_all_nets(2500.0_ps, "after-pulse");
}

// --- full-system conformance: the whole Fig. 6 netlist, compiled vs event --

// In a PSNT_COMPILE=off build the kernel is compiled out and Compile::kAuto
// quietly runs event-driven; the conformance tests then compare the event
// path against itself (still a valid, if tautological, check) and the
// kernel-specific guards are skipped.
#if defined(PSNT_COMPILE_OFF)
constexpr bool kKernelAvailable = false;
#else
constexpr bool kKernelAvailable = true;
#endif

core::FullStructuralSystem::Config system_config(
    core::DelayCode code, core::FullStructuralSystem::Config::Compile mode) {
  core::FullStructuralSystem::Config cfg;
  cfg.code = code;
  cfg.compile = mode;
  return cfg;
}

TEST(CompileLowering, FullSystemCompiledMatchesEventDrivenOnAllCodes) {
  // The complete sensor system (synthesized FSM + PG + MUX trees + sensor
  // cells) measured through the compiled kernel must produce bit-identical
  // words to the event-driven oracle for every Delay Code — the tap
  // selection runs through the live code register in both modes.
  const auto& model = psnt::calib::calibrated().model;
  const analog::ConstantRail vdd{0.97_V};
  for (std::uint8_t c = 0; c < 8; ++c) {
    const core::DelayCode code{c};
    Simulator sim_evt;
    Simulator sim_cmp;
    const auto array = psnt::calib::make_paper_array(model);
    const core::PulseGenerator pg{model.pg_config()};
    core::FullStructuralSystem event_sys(
        sim_evt, "sys", array, pg, analog::RailPair{&vdd, nullptr},
        system_config(code,
                      core::FullStructuralSystem::Config::Compile::kOff));
    core::FullStructuralSystem compiled_sys(
        sim_cmp, "sys", array, pg, analog::RailPair{&vdd, nullptr},
        system_config(code,
                      core::FullStructuralSystem::Config::Compile::kAuto));
    ASSERT_FALSE(event_sys.compiled());
    ASSERT_EQ(compiled_sys.compiled(), kKernelAvailable)
        << "lowering refused the full system netlist (code " << int(c) << ")";

    const auto expected = event_sys.run_measures(3);
    const auto actual = compiled_sys.run_measures(3);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k].to_string(), expected[k].to_string())
          << "code " << int(c) << " word " << k;
    }
    // The mirrored net state must agree too, not just the read-out bits.
    for (std::size_t i = 0; i < sim_evt.net_count(); ++i) {
      ASSERT_EQ(sim_cmp.net_at(i).value(), sim_evt.net_at(i).value())
          << "code " << int(c) << " net '" << sim_evt.net_at(i).name() << "'";
    }
  }
}

TEST(CompileLowering, FullSystemRetargetsCodeThroughLiveSelects) {
  // set_code reloads the code register through INIT; the MUX selects follow
  // and the compiled and event-driven systems stay in lockstep.
  const auto& model = psnt::calib::calibrated().model;
  const analog::ConstantRail vdd{0.97_V};
  Simulator sim_evt;
  Simulator sim_cmp;
  const auto array = psnt::calib::make_paper_array(model);
  const core::PulseGenerator pg{model.pg_config()};
  core::FullStructuralSystem event_sys(
      sim_evt, "sys", array, pg, analog::RailPair{&vdd, nullptr},
      system_config(core::DelayCode{3},
                    core::FullStructuralSystem::Config::Compile::kOff));
  core::FullStructuralSystem compiled_sys(
      sim_cmp, "sys", array, pg, analog::RailPair{&vdd, nullptr},
      system_config(core::DelayCode{3},
                    core::FullStructuralSystem::Config::Compile::kAuto));
  ASSERT_EQ(compiled_sys.compiled(), kKernelAvailable);

  // First batch loads the construction code through INIT; later batches
  // reconfigure only when set_code changes it.
  (void)event_sys.run_measures(1);
  (void)compiled_sys.run_measures(1);

  for (const std::uint8_t c : {3, 5, 2, 7, 0}) {
    event_sys.set_code(core::DelayCode{c});
    compiled_sys.set_code(core::DelayCode{c});
    const auto expected = event_sys.run_measures(2, /*configure_first=*/false);
    const auto actual = compiled_sys.run_measures(2, /*configure_first=*/false);
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k].to_string(), expected[k].to_string())
          << "code " << int(c) << " word " << k;
    }
    EXPECT_EQ(event_sys.fsm().decoded_code(), core::DelayCode{c});
    EXPECT_EQ(compiled_sys.fsm().decoded_code(), core::DelayCode{c});
  }
}

TEST(CompileLowering, FullSystemFallsBackWhenMutatedBeforeFirstRun) {
  // Topology growth between compile and the first measure quietly reverts
  // to the event-driven path; growth after compiled measures began is a
  // hard error (the two worlds have diverged).
  if (!kKernelAvailable) GTEST_SKIP() << "built with PSNT_COMPILE=off";
  const auto& model = psnt::calib::calibrated().model;
  const analog::ConstantRail vdd{1.0_V};
  const auto array = psnt::calib::make_paper_array(model);
  const core::PulseGenerator pg{model.pg_config()};
  {
    Simulator sim;
    core::FullStructuralSystem sys(
        sim, "sys", array, pg, analog::RailPair{&vdd, nullptr},
        system_config(core::DelayCode{3},
                      core::FullStructuralSystem::Config::Compile::kAuto));
    ASSERT_TRUE(sys.compiled());
    sim.net("foreign");  // bump topology before any compiled run
    const auto words = sys.run_measures(1);
    EXPECT_FALSE(sys.compiled()) << "stale kernel must be dropped";
    EXPECT_EQ(words[0].to_string(), "0011111");  // Fig. 9 word still correct
  }
  {
    Simulator sim;
    core::FullStructuralSystem sys(
        sim, "sys", array, pg, analog::RailPair{&vdd, nullptr},
        system_config(core::DelayCode{3},
                      core::FullStructuralSystem::Config::Compile::kAuto));
    (void)sys.run_measures(1);
    ASSERT_TRUE(sys.compiled());
    sim.net("late");  // mutate after compiled measures began
    EXPECT_THROW((void)sys.run_measures(1), std::logic_error);
  }
}

TEST(CompileLowering, FullSystemFallsBackWhenProbeAttachedAfterCompile) {
  // A listener subscribed after lowering would be silently starved by the
  // compiled sweeps; the system detects it and reverts to event-driven so
  // the probe observes every transition.
  if (!kKernelAvailable) GTEST_SKIP() << "built with PSNT_COMPILE=off";
  const auto& model = psnt::calib::calibrated().model;
  const analog::ConstantRail vdd{1.0_V};
  const auto array = psnt::calib::make_paper_array(model);
  const core::PulseGenerator pg{model.pg_config()};
  Simulator sim;
  core::FullStructuralSystem sys(
      sim, "sys", array, pg, analog::RailPair{&vdd, nullptr},
      system_config(core::DelayCode{3},
                    core::FullStructuralSystem::Config::Compile::kAuto));
  ASSERT_TRUE(sys.compiled());
  std::size_t transitions = 0;
  sys.sensor().cp->on_change(
      [&](const Net&, Logic, Logic, SimTime) { ++transitions; });
  const auto words = sys.run_measures(1);
  EXPECT_FALSE(sys.compiled());
  EXPECT_GT(transitions, 0u) << "the probe must see the CP edges";
  EXPECT_EQ(words[0].to_string(), "0011111");
}

}  // namespace
}  // namespace psnt::sim
