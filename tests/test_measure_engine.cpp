// Conformance suite for the MeasureEngine layer: every registered backend
// (behavioral model, gate-level structural netlist) must honour the same
// PREPARE/SENSE transaction semantics, the EngineContext hook surface (word
// hook + rail offset), the delay-code policy, and decode/encode coherence.
// New backends register a factory in backends() and inherit the whole suite.
#include "core/measure_engine.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "calib/fit.h"
#include "core/range_tuner.h"
#include "core/thermometer.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

struct BackendSpec {
  std::string name;
  // Builds a fresh engine bound to `rails` with the given site options.
  std::function<EngineHandle(analog::RailPair, const EngineSiteOptions&)>
      build;
};

std::vector<BackendSpec> backends() {
  const auto& model = calib::calibrated().model;
  std::vector<BackendSpec> out;
  out.push_back(
      {"behavioral", [&model](analog::RailPair rails,
                              const EngineSiteOptions& options) {
         return make_behavioral_engine(calib::make_paper_engine(model), rails,
                                       options);
       }});
  out.push_back(
      {"structural", [&model](analog::RailPair rails,
                              const EngineSiteOptions& options) {
         return make_structural_engine(calib::make_paper_array(model),
                                       PulseGenerator{model.pg_config()}, rails,
                                       ThermometerConfig{}.control_period,
                                       options);
       }});
  return out;
}

class MeasureEngineConformance : public ::testing::TestWithParam<BackendSpec> {
 protected:
  static MeasureRequest request_at(double ps) {
    MeasureRequest req;
    req.start = Picoseconds{ps};
    return req;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, MeasureEngineConformance, ::testing::ValuesIn(backends()),
    [](const ::testing::TestParamInfo<BackendSpec>& info) {
      return info.param.name;
    });

TEST_P(MeasureEngineConformance, MeasureIsRepeatableOnQuietRails) {
  const analog::ConstantRail vdd{1.0_V};
  auto a = GetParam().build({&vdd, nullptr}, {});
  auto b = GetParam().build({&vdd, nullptr}, {});
  const auto ma = a->measure(request_at(0.0));
  const auto mb = b->measure(request_at(0.0));
  EXPECT_EQ(ma.word, mb.word) << "same backend, same rails, same request";
  EXPECT_EQ(ma.word.width(), a->word_bits());
  EXPECT_GE(ma.timestamp.value(), 0.0)
      << "timestamp is the SENSE edge, after the transaction launch";
  EXPECT_TRUE(ma.bin.in_range()) << "nominal supply must decode in range";
}

TEST_P(MeasureEngineConformance, WordIsMonotoneInSupplyVoltage) {
  // More supply overdrive → more cells meet timing → count_ones must not
  // decrease. This is the thermometer property every backend inherits from
  // the physical array.
  std::size_t prev_ones = 0;
  for (const double v : {0.88, 0.95, 1.0, 1.05, 1.12}) {
    const analog::ConstantRail vdd{Volt{v}};
    auto engine = GetParam().build({&vdd, nullptr}, {});
    const auto m = engine->measure(request_at(0.0));
    EXPECT_GE(m.word.count_ones(), prev_ones) << "V=" << v;
    prev_ones = m.word.count_ones();
  }
  EXPECT_GT(prev_ones, 0u) << "1.12 V must pass at least one cell";
}

TEST_P(MeasureEngineConformance, WordHookSeesAndCorruptsEveryWord) {
  const analog::ConstantRail vdd{1.0_V};
  auto clean = GetParam().build({&vdd, nullptr}, {});
  const auto reference = clean->measure(request_at(0.0));

  auto hooked = GetParam().build({&vdd, nullptr}, {});
  std::size_t hook_calls = 0;
  hooked->context().set_word_hook([&hook_calls](ThermoWord& word) {
    ++hook_calls;
    word.set_bit(0, false);  // stuck-at-0 DS node on cell 0
  });
  const auto corrupted = hooked->measure(request_at(0.0));
  EXPECT_EQ(hook_calls, 1u);
  EXPECT_FALSE(corrupted.word.bit(0));
  ThermoWord expected = reference.word;
  expected.set_bit(0, false);
  EXPECT_EQ(corrupted.word, expected)
      << "hook must act on the raw sensed word, nothing else";

  hooked->context().clear_word_hook();
  const auto clean_again = hooked->measure(request_at(20000.0));
  EXPECT_EQ(clean_again.word.count_ones(), reference.word.count_ones())
      << "clearing the hook restores the clean path";
  EXPECT_EQ(hook_calls, 1u);
}

TEST_P(MeasureEngineConformance, RailOffsetSagsTheWordThenRestores) {
  const analog::ConstantRail vdd{1.0_V};
  auto plain = GetParam().build({&vdd, nullptr}, {});
  const auto reference = plain->measure(request_at(0.0));

  EngineSiteOptions options;
  options.fault_hooks = true;  // installs the ContextOffsetRail view
  auto engine = GetParam().build({&vdd, nullptr}, options);
  // Offset 0.0 is the identity: bit-identical to the hook-free engine.
  const auto at_zero = engine->measure(request_at(0.0));
  EXPECT_EQ(at_zero.word, reference.word);

  engine->context().set_rail_offset(-0.15);
  const auto sagged = engine->measure(request_at(20000.0));
  EXPECT_LT(sagged.word.count_ones(), reference.word.count_ones())
      << "a 150 mV droop must cost timing slack";

  engine->context().set_rail_offset(0.0);
  const auto recovered = engine->measure(request_at(40000.0));
  EXPECT_EQ(recovered.word.count_ones(), reference.word.count_ones());
}

TEST_P(MeasureEngineConformance, DecodeBracketsTheSupplyAndEncodeAgrees) {
  const analog::ConstantRail vdd{1.0_V};
  auto engine = GetParam().build({&vdd, nullptr}, {});
  const auto m = engine->measure(request_at(0.0));
  ASSERT_TRUE(m.bin.in_range());
  EXPECT_LE(m.bin.lo->value(), 1.0);
  EXPECT_GE(m.bin.hi->value(), 1.0);
  // decode() must reproduce the measurement's own bin from (word, code).
  const auto redecoded = engine->decode(m.word, m.code);
  EXPECT_EQ(redecoded.to_string(), m.bin.to_string());
  const auto enc = engine->encode(m.word);
  EXPECT_EQ(enc.count, m.word.count_ones());
}

TEST_P(MeasureEngineConformance, CodeWindowResolvesTheCodeOnceAtConstruction) {
  const auto& model = calib::calibrated().model;
  // What the RangeTuner picks for this window against the paper array.
  const auto expected =
      tune_for_window(calib::make_paper_array(model),
                      PulseGenerator{model.pg_config()}, 0.95_V, 1.05_V);

  const analog::ConstantRail vdd{1.0_V};
  EngineSiteOptions options;
  options.code_policy.initial = DelayCode{0};  // window must override this
  options.code_policy.window = CodeWindow{0.95_V, 1.05_V};
  auto engine = GetParam().build({&vdd, nullptr}, options);
  EXPECT_EQ(engine->context().current_code(), expected.code);
  const auto m = engine->measure(request_at(0.0));
  EXPECT_EQ(m.code, expected.code)
      << "measurements must carry the window-resolved code";
}

TEST_P(MeasureEngineConformance, BatchMatchesSingleMeasuresOnQuietRails) {
  const analog::ConstantRail vdd{1.0_V};
  auto batched = GetParam().build({&vdd, nullptr}, {});
  auto single = GetParam().build({&vdd, nullptr}, {});
  const Picoseconds interval{10000.0};

  std::vector<Measurement> batch;
  batched->measure_batch(request_at(0.0), interval, 4, batch);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto m =
        single->measure(request_at(static_cast<double>(k) * interval.value()));
    EXPECT_EQ(batch[k].word, m.word) << "sample " << k;
  }
}

// --- backend-specific contract points ----------------------------------

TEST(MeasureEngineCapabilities, BehavioralSupportsTrimAndVoting) {
  const auto& model = calib::calibrated().model;
  const analog::ConstantRail vdd{1.0_V};
  auto engine =
      make_behavioral_engine(calib::make_paper_engine(model), {&vdd, nullptr}, {});
  EXPECT_TRUE(engine->prefers_batch())
      << "fixed-code behavioral sites take the vectorized SoA batch path";
  {
    EngineSiteOptions auto_range_options;
    auto_range_options.code_policy.auto_range = true;
    auto auto_engine = make_behavioral_engine(
        calib::make_paper_engine(model), {&vdd, nullptr}, auto_range_options);
    EXPECT_FALSE(auto_engine->prefers_batch())
        << "auto-range must observe every word before the next PREPARE";
  }
  EXPECT_TRUE(engine->supports_code_trim());
  EXPECT_TRUE(engine->supports_voting());
  EXPECT_EQ(engine->take_batch_stats().sim_events, 0u)
      << "the behavioral model runs no event simulator";

  // Per-request code override (the drift-injection path).
  MeasureRequest req;
  req.code = DelayCode{5};
  const auto m = engine->measure(req);
  EXPECT_EQ(m.code, DelayCode{5});
  EXPECT_EQ(engine->context().current_code(), DelayCode{3})
      << "a per-request override must not disturb the policy code";
}

TEST(MeasureEngineCapabilities, StructuralIsBatchSingleVoteWithLiveTrim) {
  const auto& model = calib::calibrated().model;
  const analog::ConstantRail vdd{1.0_V};
  auto engine = make_structural_engine(
      calib::make_paper_array(model), PulseGenerator{model.pg_config()},
      {&vdd, nullptr}, ThermometerConfig{}.control_period, {});
  EXPECT_TRUE(engine->prefers_batch());
  EXPECT_TRUE(engine->supports_code_trim())
      << "the MUX selects follow the FSM code register live";
  EXPECT_FALSE(engine->supports_voting());

  std::vector<Measurement> batch;
  engine->measure_batch(MeasureRequest{}, Picoseconds{10000.0}, 2, batch);
  const auto stats = engine->take_batch_stats();
  EXPECT_GT(stats.sim_events, 0u) << "the netlist really simulates";
  EXPECT_EQ(engine->take_batch_stats().sim_events, 0u)
      << "take_batch_stats drains the window";

  // Auto-ranged structural sites stay per-sample so the policy observes
  // every word before the next PREPARE — same contract as behavioral.
  auto auto_engine = make_structural_engine(
      calib::make_paper_array(model), PulseGenerator{model.pg_config()},
      {&vdd, nullptr}, ThermometerConfig{}.control_period,
      EngineSiteOptions{{DelayCode{3}, std::nullopt, true, {}}, false});
  EXPECT_TRUE(auto_engine->context().auto_ranging());
  EXPECT_FALSE(auto_engine->prefers_batch());
}

TEST(MeasureEngineCapabilities, BehavioralHandleMatchesNoiseThermometer) {
  // The handle is a thin adapter: words must be bit-identical to driving
  // the (facade) NoiseThermometer directly over the same rails.
  const auto& model = calib::calibrated().model;
  const analog::ConstantRail vdd{1.0_V};
  auto engine =
      make_behavioral_engine(calib::make_paper_engine(model), {&vdd, nullptr}, {});
  auto thermometer = calib::make_paper_thermometer(model);
  for (std::size_t k = 0; k < 3; ++k) {
    MeasureRequest req;
    req.start = Picoseconds{static_cast<double>(k) * 10000.0};
    const auto via_handle = engine->measure(req);
    const auto direct = thermometer.measure_vdd(
        {&vdd, nullptr}, req.start, DelayCode{3});
    EXPECT_EQ(via_handle.word, direct.word) << "sample " << k;
    EXPECT_EQ(via_handle.timestamp.value(), direct.timestamp.value());
  }
}

TEST(MeasureEngineContext, ObserveDrivesAutoRangeAndCountsSteps) {
  EngineContext ctx;
  EXPECT_FALSE(ctx.auto_ranging());
  ctx.set_fixed_code(DelayCode{4});
  EXPECT_EQ(ctx.current_code(), DelayCode{4});
  EXPECT_EQ(ctx.code_steps(), 0u);
  // Fixed code: observe is the identity.
  EncodedWord overflow;
  overflow.count = 7;
  overflow.overflow = true;
  EXPECT_EQ(ctx.observe(overflow, 7), DelayCode{4});

  AutoRangeConfig ar;
  ar.initial = DelayCode{3};
  ctx.enable_auto_range(ar);
  ASSERT_TRUE(ctx.auto_ranging());
  EXPECT_EQ(ctx.current_code(), DelayCode{3});
  DelayCode code = ctx.current_code();
  for (int i = 0; i < 8 && ctx.code_steps() == 0; ++i) {
    code = ctx.observe(overflow, 7);
  }
  EXPECT_GT(ctx.code_steps(), 0u)
      << "persistent overflow must force a range step";
  EXPECT_EQ(ctx.current_code(), code);
}

TEST(MeasureEngineCapabilities, StructuralAutoRangeConvergesLikeBehavioral) {
  // The same closed loop — measure, encode, observe — over identical rails
  // must walk both backends through the same code sequence: the structural
  // engine now resolves its code per measure and retargets the PG tap
  // through the live MUX selects.
  const auto& model = calib::calibrated().model;
  const analog::ConstantRail vdd{0.84_V};  // saturates the initial code
  EngineSiteOptions options;
  options.code_policy.auto_range = true;

  auto behavioral = make_behavioral_engine(calib::make_paper_engine(model),
                                           {&vdd, nullptr}, options);
  auto structural = make_structural_engine(
      calib::make_paper_array(model), PulseGenerator{model.pg_config()},
      {&vdd, nullptr}, ThermometerConfig{}.control_period, options);

  for (std::size_t k = 0; k < 12; ++k) {
    MeasureRequest req;
    req.start = Picoseconds{static_cast<double>(k) * 10000.0};
    const auto mb = behavioral->measure(req);
    behavioral->context().observe(behavioral->encode(mb.word),
                                  mb.word.width());
    const auto ms = structural->measure(req);
    structural->context().observe(structural->encode(ms.word),
                                  ms.word.width());
    EXPECT_EQ(ms.code, mb.code) << "trim sequences diverged at sample " << k;
    EXPECT_EQ(ms.word, mb.word) << "words diverged at sample " << k;
  }
  EXPECT_GT(structural->context().code_steps(), 0u)
      << "the rail must actually force a range step";
  EXPECT_EQ(structural->context().current_code(),
            behavioral->context().current_code());
}

}  // namespace
}  // namespace psnt::core
