#include "core/thermo_code.h"

#include <gtest/gtest.h>

namespace psnt::core {
namespace {

TEST(ThermoWord, OfCountSetsLowBits) {
  const auto w = ThermoWord::of_count(5, 7);
  EXPECT_EQ(w.to_string(), "0011111");
  EXPECT_EQ(w.count_ones(), 5u);
  EXPECT_TRUE(w.is_valid_thermometer());
}

TEST(ThermoWord, AllZerosAndAllOnes) {
  const auto zeros = ThermoWord::of_count(0, 7);
  const auto ones = ThermoWord::of_count(7, 7);
  EXPECT_TRUE(zeros.all_zeros());
  EXPECT_TRUE(ones.all_ones());
  EXPECT_TRUE(zeros.is_valid_thermometer());
  EXPECT_TRUE(ones.is_valid_thermometer());
  EXPECT_EQ(zeros.to_string(), "0000000");
  EXPECT_EQ(ones.to_string(), "1111111");
}

TEST(ThermoWord, FromStringMatchesPaperConvention) {
  // Paper prints highest-threshold cell first: "0011111" means the five
  // least-loaded cells sampled correctly.
  const auto w = ThermoWord::from_string("0011111");
  EXPECT_EQ(w.width(), 7u);
  EXPECT_EQ(w.count_ones(), 5u);
  EXPECT_TRUE(w.bit(0));
  EXPECT_TRUE(w.bit(4));
  EXPECT_FALSE(w.bit(5));
  EXPECT_FALSE(w.bit(6));
  EXPECT_EQ(w.to_string(), "0011111");
}

TEST(ThermoWord, RoundTripsStrings) {
  for (const char* s : {"0000000", "0000011", "0011111", "1111111",
                        "0101010", "1000001"}) {
    EXPECT_EQ(ThermoWord::from_string(s).to_string(), s);
  }
}

TEST(ThermoWord, SetAndGetBits) {
  ThermoWord w{0, 7};
  w.set_bit(2, true);
  EXPECT_TRUE(w.bit(2));
  EXPECT_EQ(w.count_ones(), 1u);
  w.set_bit(2, false);
  EXPECT_EQ(w.count_ones(), 0u);
  EXPECT_THROW((void)w.bit(7), std::logic_error);
  EXPECT_THROW(w.set_bit(9, true), std::logic_error);
}

TEST(ThermoWord, BubbleDetection) {
  const auto bubbled = ThermoWord::from_string("0101111");
  EXPECT_FALSE(bubbled.is_valid_thermometer());
  EXPECT_EQ(bubbled.count_ones(), 5u);
  EXPECT_EQ(bubbled.bubble_error_count(), 2u);  // differs at bits 4 and 5
  EXPECT_EQ(bubbled.bubble_corrected().to_string(), "0011111");
}

TEST(ThermoWord, ValidWordsHaveNoBubbleErrors) {
  for (std::size_t ones = 0; ones <= 7; ++ones) {
    const auto w = ThermoWord::of_count(ones, 7);
    EXPECT_EQ(w.bubble_error_count(), 0u);
    EXPECT_EQ(w.bubble_corrected(), w);
  }
}

TEST(ThermoWord, EqualityIncludesWidth) {
  EXPECT_EQ(ThermoWord::of_count(3, 7), ThermoWord::of_count(3, 7));
  EXPECT_FALSE(ThermoWord::of_count(3, 7) == ThermoWord::of_count(3, 8));
}

TEST(ThermoWord, Validation) {
  EXPECT_THROW(ThermoWord(0, 0), std::logic_error);
  EXPECT_THROW(ThermoWord(0, 33), std::logic_error);
  EXPECT_THROW(ThermoWord(0x80, 7), std::logic_error);  // bit beyond width
  EXPECT_THROW(ThermoWord::of_count(8, 7), std::logic_error);
  EXPECT_THROW(ThermoWord::from_string("01a0"), std::logic_error);
  EXPECT_THROW(ThermoWord::from_string(""), std::logic_error);
}

// Property sweep: every contiguous word is valid; every word with an
// isolated hole is not.
class ThermoWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThermoWidths, OfCountAlwaysValid) {
  const std::size_t width = GetParam();
  for (std::size_t ones = 0; ones <= width; ++ones) {
    const auto w = ThermoWord::of_count(ones, width);
    EXPECT_TRUE(w.is_valid_thermometer()) << w.to_string();
    EXPECT_EQ(w.count_ones(), ones);
  }
}

TEST_P(ThermoWidths, SingleHoleIsInvalidAndCorrectable) {
  const std::size_t width = GetParam();
  if (width < 3) return;
  for (std::size_t hole = 0; hole + 1 < width - 1; ++hole) {
    // ones up to `hole+2`, then clear `hole`: creates a bubble.
    ThermoWord w = ThermoWord::of_count(hole + 2, width);
    w.set_bit(hole, false);
    EXPECT_FALSE(w.is_valid_thermometer()) << w.to_string();
    EXPECT_TRUE(w.bubble_corrected().is_valid_thermometer());
    EXPECT_EQ(w.bubble_corrected().count_ones(), w.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ThermoWidths,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 15, 31));

}  // namespace
}  // namespace psnt::core
