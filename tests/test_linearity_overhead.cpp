#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/linearity.h"
#include "core/overhead.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

struct Rig {
  const calib::CalibratedModel& model = calib::calibrated().model;
  SensorArray array = calib::make_paper_array(model);
  PulseGenerator pg{model.pg_config()};
};

TEST(Linearity, NominalArrayMetrics) {
  Rig s;
  const auto rep = analyze_linearity(s.array, s.pg, DelayCode{3});
  // Window 226 mV over 6 steps → ideal LSB ≈ 37.7 mV.
  EXPECT_NEAR(rep.lsb_ideal_mv, 37.67, 0.2);
  EXPECT_EQ(rep.dnl_lsb.size(), 6u);
  EXPECT_EQ(rep.inl_lsb.size(), 7u);
  // End INL points are zero by the endpoint-fit definition.
  EXPECT_NEAR(rep.inl_lsb.front(), 0.0, 1e-9);
  EXPECT_NEAR(rep.inl_lsb.back(), 0.0, 1e-9);
  // The paper ladder is deliberately uneven at the bottom (69 mV first gap):
  // DNL of step 0 ≈ 69/37.7 - 1 ≈ +0.83.
  EXPECT_NEAR(rep.dnl_lsb[0], 0.83, 0.05);
  EXPECT_GT(rep.max_abs_dnl, 0.5);
}

TEST(Linearity, DnlSumsToZero) {
  // Endpoint definition ⇒ Σ DNL = 0.
  Rig s;
  const auto rep = analyze_linearity(s.array, s.pg, DelayCode{3});
  double sum = 0.0;
  for (double d : rep.dnl_lsb) sum += d;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Linearity, UniformLadderIsNearlyIdeal) {
  // An equal-threshold-spacing ladder (built by solving loads) must show
  // tiny DNL/INL.
  Rig s;
  const Picoseconds budget = s.model.budget(DelayCode{3});
  std::vector<Picofarad> loads;
  for (int i = 0; i < 7; ++i) {
    loads.push_back(*s.model.inverter.load_for_budget(
        Volt{0.85 + 0.03 * i}, budget));
  }
  const auto uniform =
      SensorArray::with_loads(s.model.inverter, s.model.flipflop, loads);
  const auto rep = analyze_linearity(uniform, s.pg, DelayCode{3});
  EXPECT_LT(rep.max_abs_dnl, 1e-6);
  EXPECT_LT(rep.max_abs_inl, 1e-6);
}

TEST(Linearity, MonteCarloStatisticsBehave) {
  Rig s;
  const auto mc = monte_carlo_linearity(s.model.inverter, s.model.flipflop,
                                        s.model.array_loads, s.pg,
                                        DelayCode{3}, 60, 42);
  EXPECT_EQ(mc.trials, 60u);
  EXPECT_GE(mc.p95_max_abs_dnl, mc.mean_max_abs_dnl);
  EXPECT_GE(mc.p95_max_abs_inl, mc.mean_max_abs_inl);
  EXPECT_GE(mc.yield_half_lsb, 0.0);
  EXPECT_LE(mc.yield_half_lsb, 1.0);
  // Mismatch can only worsen the nominal DNL.
  const auto nominal = analyze_linearity(s.array, s.pg, DelayCode{3});
  EXPECT_GE(mc.mean_max_abs_dnl, nominal.max_abs_dnl * 0.9);
}

TEST(Linearity, MonteCarloDeterministicPerSeed) {
  Rig s;
  const auto a = monte_carlo_linearity(s.model.inverter, s.model.flipflop,
                                       s.model.array_loads, s.pg,
                                       DelayCode{3}, 20, 7);
  const auto b = monte_carlo_linearity(s.model.inverter, s.model.flipflop,
                                       s.model.array_loads, s.pg,
                                       DelayCode{3}, 20, 7);
  EXPECT_DOUBLE_EQ(a.mean_max_abs_dnl, b.mean_max_abs_dnl);
  EXPECT_DOUBLE_EQ(a.p95_max_abs_inl, b.p95_max_abs_inl);
}

TEST(Overhead, AreaDominatedByLoadCaps) {
  const auto report = estimate_overhead(calib::calibrated().model);
  EXPECT_GT(report.area.load_caps_um2, report.area.sense_cells_um2);
  EXPECT_GT(report.area.total_um2, 0.0);
  EXPECT_NEAR(report.area.total_um2,
              report.area.sense_cells_um2 + report.area.load_caps_um2 +
                  report.area.pulse_gen_um2 + report.area.control_um2,
              1e-9);
}

TEST(Overhead, LowOverheadAgainstATypicalCut) {
  // The abstract's claim: for a 1 mm² CUT the whole system (one site) stays
  // well under 1 % area.
  const auto report = estimate_overhead(calib::calibrated().model);
  EXPECT_LT(report.area.percent_of(1e6), 1.0);
}

TEST(Overhead, PowerScalesWithMeasureRate) {
  const auto report = estimate_overhead(calib::calibrated().model);
  const double idle = report.power.power_uw_at(0.0);
  const double busy = report.power.power_uw_at(1e6);
  EXPECT_DOUBLE_EQ(idle, report.power.leakage_uw);
  EXPECT_GT(busy, idle);
  // At 1 M measures/s the whole system stays in the tens-of-µW range.
  EXPECT_LT(busy, 500.0);
}

TEST(Overhead, SitesScaleAreaAndEnergyLinearly) {
  OverheadConfig one;
  OverheadConfig sixteen;
  sixteen.sensor_sites = 16;
  const auto r1 = estimate_overhead(calib::calibrated().model, one);
  const auto r16 = estimate_overhead(calib::calibrated().model, sixteen);
  // Control is shared: the 16-site system is < 16x the area of one site.
  EXPECT_LT(r16.area.total_um2, 16.0 * r1.area.total_um2);
  EXPECT_GT(r16.area.total_um2, 10.0 * r1.area.sense_cells_um2);
  EXPECT_GT(r16.power.energy_per_measure_pj,
            10.0 * (r1.power.energy_per_measure_pj -
                    r1.power.energy_per_measure_pj * 0.1));
}

TEST(Overhead, Validation) {
  OverheadConfig bad;
  bad.sensor_sites = 0;
  EXPECT_THROW((void)estimate_overhead(calib::calibrated().model, bad),
               std::logic_error);
}

}  // namespace
}  // namespace psnt::core
