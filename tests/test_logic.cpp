#include "sim/logic.h"

#include <gtest/gtest.h>

#include <tuple>

namespace psnt::sim {
namespace {

TEST(Logic, CharRendering) {
  EXPECT_EQ(to_char(Logic::L0), '0');
  EXPECT_EQ(to_char(Logic::L1), '1');
  EXPECT_EQ(to_char(Logic::X), 'x');
  EXPECT_EQ(to_char(Logic::Z), 'z');
}

TEST(Logic, KnownPredicate) {
  EXPECT_TRUE(is_known(Logic::L0));
  EXPECT_TRUE(is_known(Logic::L1));
  EXPECT_FALSE(is_known(Logic::X));
  EXPECT_FALSE(is_known(Logic::Z));
}

TEST(Logic, NotTable) {
  EXPECT_EQ(logic_not(Logic::L0), Logic::L1);
  EXPECT_EQ(logic_not(Logic::L1), Logic::L0);
  EXPECT_EQ(logic_not(Logic::X), Logic::X);
  EXPECT_EQ(logic_not(Logic::Z), Logic::X);  // floating input reads X
}

TEST(Logic, AndControllingZero) {
  // 0 dominates even X/Z.
  for (Logic other : {Logic::L0, Logic::L1, Logic::X, Logic::Z}) {
    EXPECT_EQ(logic_and(Logic::L0, other), Logic::L0);
    EXPECT_EQ(logic_and(other, Logic::L0), Logic::L0);
  }
  EXPECT_EQ(logic_and(Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_and(Logic::L1, Logic::X), Logic::X);
}

TEST(Logic, OrControllingOne) {
  for (Logic other : {Logic::L0, Logic::L1, Logic::X, Logic::Z}) {
    EXPECT_EQ(logic_or(Logic::L1, other), Logic::L1);
    EXPECT_EQ(logic_or(other, Logic::L1), Logic::L1);
  }
  EXPECT_EQ(logic_or(Logic::L0, Logic::L0), Logic::L0);
  EXPECT_EQ(logic_or(Logic::L0, Logic::X), Logic::X);
}

TEST(Logic, XorPropagatesUnknown) {
  EXPECT_EQ(logic_xor(Logic::L0, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L1), Logic::L0);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_xor(Logic::Z, Logic::L0), Logic::X);
}

TEST(Logic, MuxSelectsBySel) {
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L1, Logic::L0), Logic::L0);
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L1, Logic::L1), Logic::L1);
}

TEST(Logic, MuxUnknownSelect) {
  // Agreeing data inputs shine through an unknown select.
  EXPECT_EQ(logic_mux(Logic::L1, Logic::L1, Logic::X), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L0, Logic::Z), Logic::L0);
  // Disagreeing data inputs do not.
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L1, Logic::X), Logic::X);
}

TEST(Logic, FromBool) {
  EXPECT_EQ(from_bool(true), Logic::L1);
  EXPECT_EQ(from_bool(false), Logic::L0);
}

// De Morgan over the full 4-value domain: ~(a&b) == ~a | ~b.
class DeMorgan
    : public ::testing::TestWithParam<std::tuple<Logic, Logic>> {};

TEST_P(DeMorgan, HoldsOnAllPairs) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(logic_not(logic_and(a, b)),
            logic_or(logic_not(a), logic_not(b)));
  EXPECT_EQ(logic_not(logic_or(a, b)),
            logic_and(logic_not(a), logic_not(b)));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DeMorgan,
    ::testing::Combine(::testing::Values(Logic::L0, Logic::L1, Logic::X,
                                         Logic::Z),
                       ::testing::Values(Logic::L0, Logic::L1, Logic::X,
                                         Logic::Z)));

}  // namespace
}  // namespace psnt::sim
