#include "analog/cell_library.h"

#include <gtest/gtest.h>

namespace psnt::analog {
namespace {

using namespace psnt::literals;

TEST(TimingTable, ExactOnGridPoints) {
  TimingTable t({10.0, 20.0}, {0.001, 0.002},
                {5.0, 6.0,
                 7.0, 9.0});
  EXPECT_DOUBLE_EQ(t.lookup(10.0_ps, 0.001_pF).value(), 5.0);
  EXPECT_DOUBLE_EQ(t.lookup(10.0_ps, 0.002_pF).value(), 6.0);
  EXPECT_DOUBLE_EQ(t.lookup(20.0_ps, 0.001_pF).value(), 7.0);
  EXPECT_DOUBLE_EQ(t.lookup(20.0_ps, 0.002_pF).value(), 9.0);
}

TEST(TimingTable, BilinearInterpolationAtCenter) {
  TimingTable t({10.0, 20.0}, {0.001, 0.002},
                {5.0, 6.0,
                 7.0, 9.0});
  EXPECT_DOUBLE_EQ(t.lookup(15.0_ps, 0.0015_pF).value(), 6.75);
}

TEST(TimingTable, ExtrapolatesBeyondAxes) {
  TimingTable t({10.0, 20.0}, {0.001, 0.002},
                {5.0, 6.0,
                 7.0, 9.0});
  // Along the load axis at slew 10: slope 1000 ps/pF → at 0.003 expect 7.
  EXPECT_DOUBLE_EQ(t.lookup(10.0_ps, 0.003_pF).value(), 7.0);
  // Below the axis: at 0.0 expect 4.
  EXPECT_DOUBLE_EQ(t.lookup(10.0_ps, 0.0_pF).value(), 4.0);
}

TEST(TimingTable, LinearFactoryMatchesFormula) {
  const auto t = TimingTable::linear(20.0, 1000.0, 0.5);
  // value = 20 + 1000*load + 0.5*slew at any point (exactly affine).
  EXPECT_NEAR(t.lookup(40.0_ps, 0.010_pF).value(), 20.0 + 10.0 + 20.0, 1e-9);
  EXPECT_NEAR(t.lookup(100.0_ps, 0.050_pF).value(), 20.0 + 50.0 + 50.0, 1e-9);
}

TEST(TimingTable, RejectsMalformedAxes) {
  EXPECT_THROW(TimingTable({2.0, 1.0}, {0.001}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW(TimingTable({1.0}, {0.001}, {1.0, 2.0}), std::logic_error);
}

TEST(CellLibrary, DefaultLibraryContents) {
  const auto& lib = default_90nm_library();
  for (const char* name :
       {"INV_X1", "INV_X2", "INV_X4", "BUF_X1", "NAND2_X1", "NOR2_X1",
        "AND2_X1", "OR2_X1", "XOR2_X1", "MUX2_X1", "AOI21_X1", "DFF_X1",
        "DLY4_X1"}) {
    EXPECT_NE(lib.find(name), nullptr) << name;
  }
  EXPECT_EQ(lib.find("NAND8_X1"), nullptr);
  EXPECT_THROW((void)lib.at("NAND8_X1"), std::logic_error);
}

TEST(CellLibrary, DriveStrengthOrdering) {
  const auto& lib = default_90nm_library();
  const Picoseconds slew{40.0};
  const Picofarad load{0.02};
  const double x1 = lib.at("INV_X1").worst_delay(slew, load).value();
  const double x2 = lib.at("INV_X2").worst_delay(slew, load).value();
  const double x4 = lib.at("INV_X4").worst_delay(slew, load).value();
  EXPECT_GT(x1, x2);
  EXPECT_GT(x2, x4);
}

TEST(CellLibrary, DffIsSequentialWithPlausibleTiming) {
  const auto& lib = default_90nm_library();
  const Cell& dff = lib.at("DFF_X1");
  ASSERT_TRUE(dff.is_sequential());
  EXPECT_GT(dff.seq->t_setup.value(), 0.0);
  EXPECT_GT(dff.seq->clk_to_q.lookup(40.0_ps, 0.005_pF).value(),
            dff.seq->t_setup.value());
}

TEST(CellLibrary, ArcLookupByPin) {
  const auto& lib = default_90nm_library();
  const Cell& nand = lib.at("NAND2_X1");
  EXPECT_NE(nand.find_arc("A", "Y"), nullptr);
  EXPECT_NE(nand.find_arc("B", "Y"), nullptr);
  EXPECT_EQ(nand.find_arc("C", "Y"), nullptr);
  EXPECT_TRUE(nand.find_arc("A", "Y")->inverting);
  EXPECT_FALSE(lib.at("BUF_X1").find_arc("A", "Y")->inverting);
}

TEST(CellLibrary, VoltageDerateIsOneAtNominal) {
  const auto& lib = default_90nm_library();
  EXPECT_NEAR(lib.voltage_derate(lib.nominal_voltage()), 1.0, 1e-12);
}

TEST(CellLibrary, VoltageDerateGrowsAsSupplyDrops) {
  const auto& lib = default_90nm_library();
  double prev = 10.0;
  for (double v = 0.80; v <= 1.20; v += 0.05) {
    const double f = lib.voltage_derate(Volt{v});
    EXPECT_LT(f, prev) << "at V=" << v;
    prev = f;
  }
  EXPECT_GT(lib.voltage_derate(Volt{0.9}), 1.0);
  EXPECT_LT(lib.voltage_derate(Volt{1.1}), 1.0);
}

TEST(CellLibrary, RejectsDuplicates) {
  CellLibrary lib;
  Cell c;
  c.name = "X";
  lib.add(c);
  EXPECT_THROW(lib.add(c), std::logic_error);
}

TEST(CellLibrary, CellNamesSorted) {
  const auto& lib = default_90nm_library();
  const auto names = lib.cell_names();
  EXPECT_EQ(names.size(), lib.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace psnt::analog
