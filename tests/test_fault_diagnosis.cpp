#include "core/fault_diagnosis.h"

#include <gtest/gtest.h>

#include "calib/fit.h"
#include "core/sensor_array.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

struct Rig {
  const calib::CalibratedModel& model = calib::calibrated().model;
  SensorArray array = calib::make_paper_array(model);
  Picoseconds skew = model.skew(DelayCode{3});

  // Healthy measurement source.
  std::function<ThermoWord(Volt)> healthy() const {
    return [this](Volt v) { return array.measure(v, skew); };
  }

  // Fault injector wrapping the healthy source.
  std::function<ThermoWord(Volt)> with_fault(std::size_t bit,
                                             bool stuck_value) const {
    return [this, bit, stuck_value](Volt v) {
      ThermoWord w = array.measure(v, skew);
      w.set_bit(bit, stuck_value);
      return w;
    };
  }
};

TEST(FaultDiagnosis, HealthyArrayPassesSelfTest) {
  Rig rig;
  const auto report =
      diagnose_cells(rig.healthy(), 0.75_V, 1.15_V, 100);
  EXPECT_TRUE(report.all_healthy());
  EXPECT_EQ(report.faulty_count(), 0u);
  ASSERT_EQ(report.cells.size(), 7u);
  // Flip voltages reproduce the thresholds in order.
  const auto thr = rig.array.thresholds(rig.skew);
  for (std::size_t b = 0; b < 7; ++b) {
    ASSERT_TRUE(report.cells[b].flip_voltage.has_value()) << b;
    EXPECT_NEAR(report.cells[b].flip_voltage->value(), thr[b].value(), 0.006)
        << b;
    EXPECT_EQ(report.cells[b].flip_count, 1u);
  }
}

TEST(FaultDiagnosis, DetectsStuckLow) {
  Rig rig;
  const auto report =
      diagnose_cells(rig.with_fault(4, false), 0.75_V, 1.15_V, 80);
  EXPECT_FALSE(report.all_healthy());
  EXPECT_EQ(report.faulty_count(), 1u);
  EXPECT_EQ(report.cells[4].health, CellHealth::kStuckLow);
  EXPECT_FALSE(report.cells[4].flip_voltage.has_value());
  // Every other cell still healthy.
  for (std::size_t b = 0; b < 7; ++b) {
    if (b == 4) continue;
    EXPECT_EQ(report.cells[b].health, CellHealth::kHealthy) << b;
  }
}

TEST(FaultDiagnosis, DetectsStuckHigh) {
  Rig rig;
  const auto report =
      diagnose_cells(rig.with_fault(1, true), 0.75_V, 1.15_V, 80);
  EXPECT_EQ(report.cells[1].health, CellHealth::kStuckHigh);
  EXPECT_EQ(report.faulty_count(), 1u);
}

TEST(FaultDiagnosis, DetectsMarginalCell) {
  Rig rig;
  // Inject a bit that chatters with voltage (parity of the sweep index).
  int call = 0;
  auto noisy = [&rig, &call](Volt v) {
    ThermoWord w = rig.array.measure(v, rig.skew);
    if (v.value() > 0.9 && v.value() < 1.0) {
      w.set_bit(3, (call++ % 2) == 0);
    }
    return w;
  };
  const auto report = diagnose_cells(noisy, 0.75_V, 1.15_V, 80);
  EXPECT_EQ(report.cells[3].health, CellHealth::kMarginal);
  EXPECT_GT(report.cells[3].flip_count, 1u);
}

TEST(FaultDiagnosis, SweepMustCoverTheWindow) {
  Rig rig;
  // A sweep entirely below every threshold sees all-stuck-low — the report
  // itself is the hint that the window was missed.
  const auto report = diagnose_cells(rig.healthy(), 0.60_V, 0.75_V, 30);
  EXPECT_EQ(report.faulty_count(), 7u);
  for (const auto& c : report.cells) {
    EXPECT_EQ(c.health, CellHealth::kStuckLow);
  }
}

TEST(FaultDiagnosis, ReportRendering) {
  Rig rig;
  const auto report =
      diagnose_cells(rig.with_fault(0, false), 0.75_V, 1.15_V, 40);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("bit 0: stuck-low"), std::string::npos);
  EXPECT_NE(text.find("bit 1: healthy"), std::string::npos);
  EXPECT_NE(text.find("flips at"), std::string::npos);
}

TEST(FaultDiagnosis, HealthNames) {
  EXPECT_STREQ(to_string(CellHealth::kHealthy), "healthy");
  EXPECT_STREQ(to_string(CellHealth::kStuckLow), "stuck-low");
  EXPECT_STREQ(to_string(CellHealth::kStuckHigh), "stuck-high");
  EXPECT_STREQ(to_string(CellHealth::kMarginal), "marginal");
}

TEST(FaultDiagnosis, Validation) {
  Rig rig;
  EXPECT_THROW(
      (void)diagnose_cells(rig.healthy(), 1.0_V, 0.9_V, 10),
      std::logic_error);
  EXPECT_THROW(
      (void)diagnose_cells(rig.healthy(), 0.8_V, 1.1_V, 2),
      std::logic_error);
}

}  // namespace
}  // namespace psnt::core
