#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "psn/waveform.h"

namespace psnt::psn {
namespace {

using namespace psnt::literals;

TEST(WaveformCsv, WriteProducesHeaderAndRows) {
  Waveform w{100.0_ps, 50.0_ps, {1.0, 0.95, 1.05}};
  std::ostringstream os;
  w.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ps,value"), std::string::npos);
  // Header + three data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("100,1"), std::string::npos);
  // Values are written at full precision; verify numerically, not textually.
  std::istringstream is(csv);
  const Waveform back = Waveform::read_csv(is);
  EXPECT_DOUBLE_EQ(back.samples()[1], 0.95);
  EXPECT_DOUBLE_EQ(back.samples()[2], 1.05);
}

TEST(WaveformCsv, RoundTripsExactly) {
  const Waveform original =
      Waveform::sine(0.0_ps, 25.0_ps, 200, 1.0, 0.05, 0.1);
  std::stringstream ss;
  original.write_csv(ss);
  const Waveform restored = Waveform::read_csv(ss);
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_DOUBLE_EQ(restored.period().value(), 25.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(restored.samples()[i], original.samples()[i], 1e-9);
  }
}

TEST(WaveformCsv, PreservesStartOffset) {
  Waveform w{5000.0_ps, 10.0_ps, {0.9, 1.0, 1.1}};
  std::stringstream ss;
  w.write_csv(ss);
  const Waveform restored = Waveform::read_csv(ss);
  EXPECT_DOUBLE_EQ(restored.start().value(), 5000.0);
  EXPECT_DOUBLE_EQ(restored.value_at(5010.0_ps), 1.0);
}

TEST(WaveformCsv, RejectsMalformedInput) {
  {
    std::stringstream ss("time_ps,value\n0,1.0\n");
    EXPECT_THROW((void)Waveform::read_csv(ss), std::logic_error);  // 1 row
  }
  {
    std::stringstream ss("time_ps,value\n0 1.0\n10 1.0\n");
    EXPECT_THROW((void)Waveform::read_csv(ss), std::logic_error);  // no comma
  }
  {
    std::stringstream ss("time_ps,value\n0,1.0\n10,1.0\n15,1.0\n");
    EXPECT_THROW((void)Waveform::read_csv(ss),
                 std::logic_error);  // non-uniform grid
  }
  {
    std::stringstream ss("time_ps,value\n10,1.0\n0,1.0\n");
    EXPECT_THROW((void)Waveform::read_csv(ss),
                 std::logic_error);  // descending times
  }
}

TEST(WaveformCsv, SkipsBlankLines) {
  std::stringstream ss("time_ps,value\n0,1.0\n\n10,0.9\n\n20,1.1\n");
  const Waveform w = Waveform::read_csv(ss);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.samples()[2], 1.1);
}

TEST(WaveformCsv, ImportedWaveformDrivesARail) {
  std::stringstream ss("time_ps,value\n0,1.0\n100,0.9\n200,1.0\n");
  const Waveform w = Waveform::read_csv(ss);
  const analog::SampledRail rail = w.to_rail();
  EXPECT_DOUBLE_EQ(rail.at(50.0_ps).value(), 0.95);
}

}  // namespace
}  // namespace psnt::psn
