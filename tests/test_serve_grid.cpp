// Grid drain → TelemetryStore wiring: the aggregator publishes every
// drained sample into an attached store, mirrors resilience telemetry into
// the degradation status, and finishes with a publish_all() so queries see
// the complete run.
#include <gtest/gtest.h>

#include <memory>

#include "grid/scan_grid.h"
#include "serve/query.h"
#include "serve/store.h"

namespace psnt::grid {
namespace {

using namespace psnt::literals;

ScanGridConfig base_config(std::size_t threads) {
  ScanGridConfig config;
  config.threads = threads;
  config.samples_per_site = 12;
  config.start = Picoseconds{0.0};
  config.interval = Picoseconds{10000.0};
  config.code = core::DelayCode{3};
  config.seed = 7;
  return config;
}

RailFactory test_rails(const scan::Floorplan& fp) {
  return ScanGrid::ir_gradient_rails(fp, Volt{1.01}, 0.05 / 5657.0,
                                     {0.0, 0.0}, /*sigma_volts=*/0.004);
}

TEST(ServeGrid, DrainPublishesEverySampleIntoStore) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 3, 3);
  auto config = base_config(2);

  serve::StoreConfig store_config;
  store_config.site_count = fp.site_count();
  store_config.shards = 1;
  store_config.v_nominal = 1.0;
  store_config.publish_every = 16;
  auto store = std::make_shared<serve::TelemetryStore>(store_config);
  config.store = store;

  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();

  const std::uint64_t drained = result.produced - result.dropped;
  EXPECT_EQ(store->total_ingested(), drained);
  EXPECT_EQ(grid.telemetry().counter("grid.serve.ingested").value(), drained);
  EXPECT_GT(grid.telemetry().counter("grid.serve.publishes").value(), 0u);

  // The final publish_all() makes the whole run queryable.
  serve::QueryEngine query(*store);
  EXPECT_EQ(query.published_seq(), drained);
  for (std::uint32_t site = 0; site < fp.site_count(); ++site) {
    const auto* snap = query.site(site);
    ASSERT_NE(snap, nullptr) << "site " << site;
    EXPECT_EQ(snap->ingested, config.samples_per_site);
    EXPECT_TRUE(query.latest(site).has_value());
  }
  // Voltages land near the nominal rail, quantiles in a sane band.
  EXPECT_GT(query.voltage_quantile(0.5), 0.5);
  EXPECT_LT(query.voltage_quantile(0.5), 1.5);
  EXPECT_FALSE(query.top_droop(3).empty());
  // No chaos configured: the degradation mirror stays clean.
  const auto degradation = query.degradation();
  EXPECT_EQ(degradation.samples_lost, 0u);
  EXPECT_EQ(degradation.sites_quarantined, 0u);
}

TEST(ServeGrid, StoreSmallerThanGridIsRejected) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 3, 3);
  auto config = base_config(1);
  serve::StoreConfig store_config;
  store_config.site_count = fp.site_count() - 1;  // too small
  auto store = std::make_shared<serve::TelemetryStore>(store_config);
  config.store = store;
  EXPECT_THROW((ScanGrid{fp, config, test_rails(fp)}), std::logic_error);
}

TEST(ServeGrid, MultiShardStoreIsRejected) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 3, 3);
  auto config = base_config(1);
  serve::StoreConfig store_config;
  store_config.site_count = fp.site_count();
  store_config.shards = 2;  // drain is a single writer
  auto store = std::make_shared<serve::TelemetryStore>(store_config);
  config.store = store;
  EXPECT_THROW((ScanGrid{fp, config, test_rails(fp)}), std::logic_error);
}

TEST(ServeGrid, RunWithoutStoreStillWorks) {
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto config = base_config(1);
  ASSERT_EQ(config.store, nullptr);
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();
  EXPECT_EQ(result.produced, fp.site_count() * config.samples_per_site);
  EXPECT_EQ(grid.telemetry().counter("grid.serve.ingested").value(), 0u);
}

}  // namespace
}  // namespace psnt::grid
