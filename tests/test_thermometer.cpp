#include "core/thermometer.h"

#include <gtest/gtest.h>

#include "calib/fit.h"

namespace psnt::core {
namespace {

using namespace psnt::literals;

NoiseThermometer make_thermometer() {
  return calib::make_paper_thermometer(calib::calibrated().model);
}

TEST(Thermometer, MeasuresConstantVddIntoTheRightBin) {
  auto t = make_thermometer();
  analog::ConstantRail vdd{1.0_V};
  const auto m = t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps,
                               DelayCode{3});
  EXPECT_EQ(m.word.to_string(), "0011111");
  ASSERT_TRUE(m.bin.in_range());
  EXPECT_LE(m.bin.lo->value(), 1.0);
  EXPECT_GT(m.bin.hi->value(), 1.0);
  EXPECT_EQ(m.target, SenseTarget::kVdd);
  EXPECT_EQ(m.code, DelayCode{3});
}

TEST(Thermometer, ReadsBelowAndAboveRange) {
  auto t = make_thermometer();
  analog::ConstantRail low{0.70_V};
  const auto m_low = t.measure_vdd(analog::RailPair{&low, nullptr}, 0.0_ps,
                                   DelayCode{3});
  EXPECT_TRUE(m_low.word.all_zeros());
  EXPECT_TRUE(m_low.bin.below_range());

  analog::ConstantRail high{1.20_V};
  const auto m_high = t.measure_vdd(analog::RailPair{&high, nullptr}, 0.0_ps,
                                    DelayCode{3});
  EXPECT_TRUE(m_high.word.all_ones());
  EXPECT_TRUE(m_high.bin.above_range());
}

TEST(Thermometer, TimestampReflectsTransactionLatency) {
  auto t = make_thermometer();
  analog::ConstantRail vdd{1.0_V};
  const auto m = t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps,
                               DelayCode{3});
  // The sense launch happens several control cycles after start.
  EXPECT_GT(m.timestamp.value(), 3.0 * t.config().control_period.value());
  EXPECT_LT(m.timestamp.value(),
            10.0 * t.config().control_period.value());
}

TEST(Thermometer, MeasuresGndBounce) {
  auto t = make_thermometer();
  // 60 mV of ground bounce: effective overdrive 0.94 V.
  analog::ConstantRail gnd{0.06_V};
  const auto m = t.measure_gnd(gnd, 0.0_ps, DelayCode{3});
  EXPECT_EQ(m.target, SenseTarget::kGnd);
  ASSERT_TRUE(m.bin.in_range());
  EXPECT_LE(m.bin.lo->value(), 0.06 + 1e-9);
  EXPECT_GT(m.bin.hi->value(), 0.06 - 1e-9);
}

TEST(Thermometer, GndQuietBinBracketsZeroBounce) {
  auto t = make_thermometer();
  analog::ConstantRail gnd{0.0_V};  // ideal ground → full 1.0 V overdrive
  const auto m = t.measure_gnd(gnd, 0.0_ps, DelayCode{3});
  // v_eff = 1.0 V sits inside the code-011 window (0.992–1.021 V), so the
  // decoded bounce bin must bracket zero.
  ASSERT_TRUE(m.bin.in_range());
  EXPECT_LE(m.bin.lo->value(), 0.0 + 1e-9);
  EXPECT_GT(m.bin.hi->value(), 0.0 - 1e-9);
}

TEST(Thermometer, IterateTracksADroopingRail) {
  auto t = make_thermometer();
  // Rail droops linearly from 1.05 to 0.85 V over 200 ns.
  analog::CallbackRail vdd{[](Picoseconds time) {
    const double frac = std::clamp(time.value() / 200000.0, 0.0, 1.0);
    return Volt{1.05 - 0.20 * frac};
  }};
  const auto ms = t.iterate_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps,
                                20000.0_ps, 10, DelayCode{3});
  ASSERT_EQ(ms.size(), 10u);
  // Counts must be non-increasing as the rail droops.
  for (std::size_t i = 1; i < ms.size(); ++i) {
    EXPECT_LE(ms[i].word.count_ones(), ms[i - 1].word.count_ones());
  }
  EXPECT_GT(ms.front().word.count_ones(), ms.back().word.count_ones());
  // Timestamps advance by the iteration interval once the FSM is out of
  // RESET (the very first transaction carries one extra control cycle).
  EXPECT_NEAR(ms[2].timestamp.value() - ms[1].timestamp.value(), 20000.0,
              1e-9);
  EXPECT_NEAR(ms[1].timestamp.value() - ms[0].timestamp.value(),
              20000.0 - t.config().control_period.value(), 1e-9);
}

TEST(Thermometer, VddRangeMatchesArrayAndCode) {
  auto t = make_thermometer();
  const auto r011 = t.vdd_range(DelayCode{3});
  const auto r010 = t.vdd_range(DelayCode{2});
  // The paper's Fig. 5: code 010 range sits higher than code 011.
  EXPECT_GT(r010.all_errors_below.value(), r011.all_errors_below.value());
  EXPECT_GT(r010.no_errors_above.value(), r011.no_errors_above.value());
  EXPECT_NEAR(r011.all_errors_below.value(), 0.827, 0.002);
  EXPECT_NEAR(r011.no_errors_above.value(), 1.053, 0.002);
}

TEST(Thermometer, GndRangeIsPositiveBounceWindow) {
  auto t = make_thermometer();
  const auto r = t.gnd_range(DelayCode{3});
  // gnd window = 1 - [0.827, 1.053] → [-0.053, 0.173]: spans zero bounce.
  EXPECT_LT(r.all_errors_below.value(), 0.0);
  EXPECT_GT(r.no_errors_above.value(), 0.1);
  EXPECT_GT(r.span().value(), 0.0);
}

TEST(Thermometer, FsmSequencesEveryMeasure) {
  auto t = make_thermometer();
  analog::ConstantRail vdd{1.0_V};
  EXPECT_EQ(t.fsm().completed_measures(), 0u);
  (void)t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps, DelayCode{3});
  EXPECT_EQ(t.fsm().completed_measures(), 1u);
  (void)t.measure_vdd(analog::RailPair{&vdd, nullptr}, 100000.0_ps,
                      DelayCode{3});
  EXPECT_EQ(t.fsm().completed_measures(), 2u);
}

TEST(Thermometer, ReconfigurationChangesActiveCode) {
  auto t = make_thermometer();
  analog::ConstantRail vdd{1.0_V};
  (void)t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps, DelayCode{3});
  EXPECT_EQ(t.fsm().active_code(), DelayCode{3});
  (void)t.measure_vdd(analog::RailPair{&vdd, nullptr}, 100000.0_ps,
                      DelayCode{5});
  EXPECT_EQ(t.fsm().active_code(), DelayCode{5});
}

TEST(Thermometer, SameVoltageDifferentCodesDifferentWords) {
  auto t = make_thermometer();
  analog::ConstantRail vdd{1.0_V};
  const auto m011 = t.measure_vdd(analog::RailPair{&vdd, nullptr}, 0.0_ps,
                                  DelayCode{3});
  const auto m010 = t.measure_vdd(analog::RailPair{&vdd, nullptr},
                                  100000.0_ps, DelayCode{2});
  // Code 010's window sits higher: fewer cells pass at the same voltage.
  EXPECT_LT(m010.word.count_ones(), m011.word.count_ones());
}

TEST(Thermometer, EncodeExposesEncoder) {
  auto t = make_thermometer();
  const auto enc = t.encode(ThermoWord::from_string("0011111"));
  EXPECT_EQ(enc.count, 5);
}

TEST(Thermometer, ConfigValidation) {
  const auto& model = calib::calibrated().model;
  ThermometerConfig bad;
  bad.control_period = Picoseconds{0.0};
  EXPECT_THROW((void)calib::make_paper_thermometer(model, bad),
               std::logic_error);
}

}  // namespace
}  // namespace psnt::core
