#include <gtest/gtest.h>

#include "sim/gates.h"
#include "sim/probe.h"
#include "sim/simulator.h"

namespace psnt::sim {
namespace {

using namespace psnt::literals;

TEST(Net, StartsUnknown) {
  Simulator sim;
  EXPECT_EQ(sim.net("n").value(), Logic::X);
}

TEST(Net, ByNameReturnsSameNet) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& a2 = sim.net("a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(sim.net_count(), 1u);
  EXPECT_EQ(sim.find_net("missing"), nullptr);
}

TEST(Net, ForceNotifiesListeners) {
  Simulator sim;
  Net& n = sim.net("n");
  int calls = 0;
  Logic seen_new = Logic::X;
  n.on_change([&](const Net&, Logic, Logic to, SimTime) {
    ++calls;
    seen_new = to;
  });
  n.force(sim.scheduler(), Logic::L1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_new, Logic::L1);
  // No-op when unchanged.
  n.force(sim.scheduler(), Logic::L1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(n.transition_count(), 1u);
}

TEST(Net, ScheduledLevelAppliesAfterDelay) {
  Simulator sim;
  Net& n = sim.net("n");
  n.schedule_level(sim.scheduler(), from_ps(100.0), Logic::L1);
  sim.run_until(99.0_ps);
  EXPECT_EQ(n.value(), Logic::X);
  sim.run_until(101.0_ps);
  EXPECT_EQ(n.value(), Logic::L1);
  EXPECT_EQ(to_ps(n.last_change()).value(), 100.0);
}

TEST(Net, InertialCancellation) {
  // Two schedules in quick succession: only the second lands.
  Simulator sim;
  Net& n = sim.net("n");
  n.force(sim.scheduler(), Logic::L0);
  n.schedule_level(sim.scheduler(), from_ps(50.0), Logic::L1);
  n.schedule_level(sim.scheduler(), from_ps(80.0), Logic::L0);
  sim.run_until(200.0_ps);
  EXPECT_EQ(n.value(), Logic::L0);
  // Only the initial force transition happened; the L1 pulse was swallowed.
  EXPECT_EQ(n.transition_count(), 1u);
}

TEST(Gates, InverterTruthAndDelay) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  sim.add<InvGate>("u1", a, y, 14.0_ps);
  TransitionRecorder rec(y);
  sim.drive(a, 10.0_ps, Logic::L0);
  sim.run_all();
  EXPECT_EQ(y.value(), Logic::L1);
  ASSERT_EQ(rec.count(), 1u);
  EXPECT_DOUBLE_EQ(rec.transitions()[0].time.value(), 24.0);
}

TEST(Gates, InverterSwallowsShortGlitch) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  sim.add<InvGate>("u1", a, y, 20.0_ps);
  TransitionRecorder rec(y);
  sim.drive(a, 0.0_ps, Logic::L0);
  // 5 ps pulse, shorter than the gate delay: inertial filtering.
  sim.drive(a, 100.0_ps, Logic::L1);
  sim.drive(a, 105.0_ps, Logic::L0);
  sim.run_all();
  // Only the initial 0→(inverted)1 transition is visible.
  ASSERT_EQ(rec.count(), 1u);
  EXPECT_EQ(y.value(), Logic::L1);
}

TEST(Gates, NandNorTruthTables) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  Net& y_nand = sim.net("y_nand");
  Net& y_nor = sim.net("y_nor");
  sim.add<Nand2Gate>("u_nand", a, b, y_nand, 1.0_ps);
  sim.add<Nor2Gate>("u_nor", a, b, y_nor, 1.0_ps);

  const struct {
    Logic a, b, nand_y, nor_y;
  } rows[] = {
      {Logic::L0, Logic::L0, Logic::L1, Logic::L1},
      {Logic::L0, Logic::L1, Logic::L1, Logic::L0},
      {Logic::L1, Logic::L0, Logic::L1, Logic::L0},
      {Logic::L1, Logic::L1, Logic::L0, Logic::L0},
  };
  double t = 10.0;
  for (const auto& row : rows) {
    sim.drive(a, Picoseconds{t}, row.a);
    sim.drive(b, Picoseconds{t}, row.b);
    sim.run_until(Picoseconds{t + 5.0});
    EXPECT_EQ(y_nand.value(), row.nand_y) << to_char(row.a) << to_char(row.b);
    EXPECT_EQ(y_nor.value(), row.nor_y) << to_char(row.a) << to_char(row.b);
    t += 10.0;
  }
}

TEST(Gates, AndOrXorMux) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& b = sim.net("b");
  Net& s = sim.net("s");
  Net& y_and = sim.net("y_and");
  Net& y_or = sim.net("y_or");
  Net& y_xor = sim.net("y_xor");
  Net& y_mux = sim.net("y_mux");
  sim.add<And2Gate>("u0", a, b, y_and, 1.0_ps);
  sim.add<Or2Gate>("u1", a, b, y_or, 1.0_ps);
  sim.add<Xor2Gate>("u2", a, b, y_xor, 1.0_ps);
  sim.add<Mux2Gate>("u3", a, b, s, y_mux, 1.0_ps);

  sim.drive(a, 0.0_ps, Logic::L1);
  sim.drive(b, 0.0_ps, Logic::L0);
  sim.drive(s, 0.0_ps, Logic::L1);
  sim.run_all();
  EXPECT_EQ(y_and.value(), Logic::L0);
  EXPECT_EQ(y_or.value(), Logic::L1);
  EXPECT_EQ(y_xor.value(), Logic::L1);
  EXPECT_EQ(y_mux.value(), Logic::L0);  // sel=1 → b
}

TEST(Gates, BufferChainAccumulatesDelay) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& m = sim.net("m");
  Net& y = sim.net("y");
  sim.add<BufGate>("u0", a, m, 30.0_ps);
  sim.add<BufGate>("u1", m, y, 45.0_ps);
  TransitionRecorder rec(y);
  sim.drive(a, 0.0_ps, Logic::L1);
  sim.run_all();
  ASSERT_EQ(rec.count(), 1u);
  EXPECT_DOUBLE_EQ(rec.transitions()[0].time.value(), 75.0);
}

TEST(Gates, RejectsInvalidConstruction) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  EXPECT_THROW(sim.add<InvGate>("bad", a, y, Picoseconds{-5.0}),
               std::logic_error);
}

TEST(Probe, DriveClockProducesEdges) {
  Simulator sim;
  Net& clk = sim.net("clk");
  TransitionRecorder rec(clk);
  drive_clock(sim, clk, 100.0_ps, 200.0_ps, 3);
  sim.run_all();
  // 3 cycles → 6 transitions; rises at 100, 300, 500.
  EXPECT_EQ(rec.count(), 6u);
  EXPECT_DOUBLE_EQ(rec.first_rise_after(0.0_ps)->value(), 100.0);
  EXPECT_DOUBLE_EQ(rec.first_rise_after(150.0_ps)->value(), 300.0);
  EXPECT_DOUBLE_EQ(rec.last_rise()->value(), 500.0);
  EXPECT_DOUBLE_EQ(rec.last_fall()->value(), 600.0);
}

TEST(Probe, DrivePulse) {
  Simulator sim;
  Net& n = sim.net("n");
  TransitionRecorder rec(n);
  sim.drive(n, 0.0_ps, Logic::L0);
  drive_pulse(sim, n, 50.0_ps, 90.0_ps);
  sim.run_all();
  EXPECT_DOUBLE_EQ(rec.first_rise_after(0.0_ps)->value(), 50.0);
  EXPECT_DOUBLE_EQ(rec.first_fall_after(50.0_ps)->value(), 90.0);
  EXPECT_THROW(drive_pulse(sim, n, 100.0_ps, 100.0_ps), std::logic_error);
}

}  // namespace
}  // namespace psnt::sim
