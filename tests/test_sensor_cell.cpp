#include "core/sensor_cell.h"

#include <gtest/gtest.h>

namespace psnt::core {
namespace {

using namespace psnt::literals;

SensorCell make_cell(double pf = 2.0) {
  return SensorCell{analog::AlphaPowerDelayModel{},
                    analog::FlipFlopTimingModel{}, Picofarad{pf}};
}

// A skew generous enough that the default cell passes near 1 V.
constexpr double kSkewPs = 160.0;

TEST(SensorCell, CorrectAboveThresholdErrorBelow) {
  const auto cell = make_cell();
  const auto thr = cell.threshold(Picoseconds{kSkewPs});
  ASSERT_TRUE(thr.has_value());
  const auto pass = cell.sense(*thr + 0.01_V, Picoseconds{kSkewPs});
  const auto fail = cell.sense(*thr - 0.01_V, Picoseconds{kSkewPs});
  EXPECT_TRUE(pass.correct);
  EXPECT_FALSE(fail.correct);
  EXPECT_EQ(fail.ff.region, analog::SampleRegion::kViolated);
}

TEST(SensorCell, MarginSignFlipsAtThreshold) {
  const auto cell = make_cell();
  const auto thr = cell.threshold(Picoseconds{kSkewPs});
  ASSERT_TRUE(thr.has_value());
  EXPECT_GT(cell.margin(*thr + 0.02_V, Picoseconds{kSkewPs}).value(), 0.0);
  EXPECT_LT(cell.margin(*thr - 0.02_V, Picoseconds{kSkewPs}).value(), 0.0);
  EXPECT_NEAR(cell.margin(*thr, Picoseconds{kSkewPs}).value(), 0.0, 1e-6);
}

TEST(SensorCell, DsArrivalEqualsInverterDelay) {
  const auto cell = make_cell();
  const auto s = cell.sense(1.0_V, Picoseconds{kSkewPs});
  EXPECT_DOUBLE_EQ(
      s.ds_arrival.value(),
      cell.inverter().delay(1.0_V, cell.c_load()).value());
}

TEST(SensorCell, BudgetSubtractsSetup) {
  const auto cell = make_cell();
  EXPECT_DOUBLE_EQ(cell.budget(Picoseconds{kSkewPs}).value(),
                   kSkewPs - cell.flipflop().params().t_setup.value());
}

TEST(SensorCell, ThresholdGrowsWithLoad) {
  double prev = 0.0;
  for (double pf : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    const auto thr = make_cell(pf).threshold(Picoseconds{kSkewPs});
    ASSERT_TRUE(thr.has_value()) << pf;
    EXPECT_GT(thr->value(), prev);
    prev = thr->value();
  }
}

TEST(SensorCell, ThresholdFallsWithSkew) {
  const auto cell = make_cell();
  double prev = 10.0;
  for (double skew : {140.0, 160.0, 180.0, 200.0}) {
    const auto thr = cell.threshold(Picoseconds{skew});
    ASSERT_TRUE(thr.has_value());
    EXPECT_LT(thr->value(), prev);
    prev = thr->value();
  }
}

TEST(SensorCell, NearThresholdPassesThroughMetastability) {
  // Just above threshold: captured but metastable, with stretched clk-to-q —
  // the Fig. 2 case-3 behaviour.
  const auto cell = make_cell();
  const auto thr = cell.threshold(Picoseconds{kSkewPs});
  ASSERT_TRUE(thr.has_value());
  const auto s = cell.sense(*thr + 0.005_V, Picoseconds{kSkewPs});
  EXPECT_TRUE(s.correct);
  EXPECT_EQ(s.ff.region, analog::SampleRegion::kMetastable);
  EXPECT_GT(s.ff.clk_to_q.value(),
            cell.flipflop().params().t_clk_to_q.value());
}

TEST(SensorCell, WellAboveThresholdIsClean) {
  const auto cell = make_cell();
  const auto thr = cell.threshold(Picoseconds{kSkewPs});
  ASSERT_TRUE(thr.has_value());
  const auto s = cell.sense(*thr + 0.2_V, Picoseconds{kSkewPs});
  EXPECT_TRUE(s.correct);
  EXPECT_EQ(s.ff.region, analog::SampleRegion::kClean);
}

TEST(SensorCell, RejectsNegativeLoad) {
  EXPECT_THROW(SensorCell(analog::AlphaPowerDelayModel{},
                          analog::FlipFlopTimingModel{}, Picofarad{-1.0}),
               std::logic_error);
}

// Property: sense() agrees with threshold() across a parameter grid.
class CellConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CellConsistency, SenseMatchesThresholdPrediction) {
  const auto [pf, skew] = GetParam();
  const auto cell = make_cell(pf);
  const auto thr = cell.threshold(Picoseconds{skew});
  if (!thr) return;  // cell not failable in-window at this skew
  for (double dv : {-0.05, -0.01, 0.01, 0.05}) {
    const Volt v = *thr + Volt{dv};
    const bool expect_correct = dv > 0.0;
    EXPECT_EQ(cell.sense(v, Picoseconds{skew}).correct, expect_correct)
        << "C=" << pf << " skew=" << skew << " dv=" << dv;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CellConsistency,
    ::testing::Combine(::testing::Values(1.0, 1.7, 2.0, 2.3, 3.0),
                       ::testing::Values(140.0, 158.0, 170.0, 200.0)));

}  // namespace
}  // namespace psnt::core
