#include "sim/supply_inverter.h"

#include <gtest/gtest.h>

#include "sim/probe.h"

namespace psnt::sim {
namespace {

using namespace psnt::literals;

TEST(SupplyInverter, DelayMatchesBehavioralModel) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  analog::AlphaPowerDelayModel model;
  analog::ConstantRail vdd{1.0_V};
  sim.add<SupplyInverter>("inv", a, y, model,
                          analog::RailPair{&vdd, nullptr}, 2.0_pF);
  TransitionRecorder rec(y);
  sim.drive(a, 0.0_ps, Logic::L1);   // settle DS low
  sim.drive(a, 1000.0_ps, Logic::L0);  // sense edge
  sim.run_all();

  const double expected = model.delay(1.0_V, 2.0_pF).value();
  ASSERT_TRUE(rec.last_rise().has_value());
  // fs quantisation: within 1 fs.
  EXPECT_NEAR(rec.last_rise()->value(), 1000.0 + expected, 0.001);
}

TEST(SupplyInverter, LowerSupplyIsSlower) {
  auto run_at = [](double volts) {
    Simulator sim;
    Net& a = sim.net("a");
    Net& y = sim.net("y");
    analog::ConstantRail vdd{Volt{volts}};
    sim.add<SupplyInverter>("inv", a, y, analog::AlphaPowerDelayModel{},
                            analog::RailPair{&vdd, nullptr}, 2.0_pF);
    TransitionRecorder rec(y);
    sim.drive(a, 0.0_ps, Logic::L1);
    sim.drive(a, 1000.0_ps, Logic::L0);
    sim.run_all();
    return rec.last_rise()->value();
  };
  EXPECT_GT(run_at(0.90), run_at(1.00));
  EXPECT_GT(run_at(1.00), run_at(1.10));
}

TEST(SupplyInverter, LargerLoadIsSlower) {
  auto run_with = [](double pf) {
    Simulator sim;
    Net& a = sim.net("a");
    Net& y = sim.net("y");
    static analog::ConstantRail vdd{1.0_V};
    sim.add<SupplyInverter>("inv", a, y, analog::AlphaPowerDelayModel{},
                            analog::RailPair{&vdd, nullptr}, Picofarad{pf});
    TransitionRecorder rec(y);
    sim.drive(a, 0.0_ps, Logic::L1);
    sim.drive(a, 1000.0_ps, Logic::L0);
    sim.run_all();
    return rec.last_rise()->value();
  };
  EXPECT_LT(run_with(1.0), run_with(2.0));
  EXPECT_LT(run_with(2.0), run_with(3.0));
}

TEST(SupplyInverter, SamplesRailAtEventTime) {
  // Rail droops between the two input edges: the second transition must see
  // the drooped voltage.
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  analog::CallbackRail vdd{[](Picoseconds t) {
    return t.value() < 500.0 ? Volt{1.0} : Volt{0.9};
  }};
  auto& inv =
      sim.add<SupplyInverter>("inv", a, y, analog::AlphaPowerDelayModel{},
                              analog::RailPair{&vdd, nullptr}, 2.0_pF);
  sim.drive(a, 0.0_ps, Logic::L1);
  sim.drive(a, 1000.0_ps, Logic::L0);
  sim.run_all();
  ASSERT_EQ(inv.transitions().size(), 2u);
  EXPECT_DOUBLE_EQ(inv.transitions()[0].supply.value(), 1.0);
  EXPECT_DOUBLE_EQ(inv.transitions()[1].supply.value(), 0.9);
  EXPECT_GT(inv.transitions()[1].delay.value(),
            inv.transitions()[0].delay.value());
}

TEST(SupplyInverter, GroundBounceReducesOverdrive) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  analog::ConstantRail vdd{1.0_V};
  analog::ConstantRail gnd{0.05_V};
  auto& inv =
      sim.add<SupplyInverter>("inv", a, y, analog::AlphaPowerDelayModel{},
                              analog::RailPair{&vdd, &gnd}, 2.0_pF);
  sim.drive(a, 0.0_ps, Logic::L1);
  sim.run_all();
  ASSERT_EQ(inv.transitions().size(), 1u);
  EXPECT_NEAR(inv.transitions()[0].supply.value(), 0.95, 1e-12);
}

TEST(SupplyInverter, RequiresVddRail) {
  Simulator sim;
  Net& a = sim.net("a");
  Net& y = sim.net("y");
  EXPECT_THROW(sim.add<SupplyInverter>("inv", a, y,
                                       analog::AlphaPowerDelayModel{},
                                       analog::RailPair{nullptr, nullptr},
                                       1.0_pF),
               std::logic_error);
}

}  // namespace
}  // namespace psnt::sim
