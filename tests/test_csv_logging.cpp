#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/logging.h"

namespace psnt::util {
namespace {

TEST(Csv, BuildsRowsAndCounts) {
  CsvTable t({"code", "delay_ps"});
  t.new_row().add("011").add(65.0);
  t.new_row().add("100").add(77.0);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.rows()[0][0], "011");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvTable t({"a", "b"});
  t.new_row().add("x").add(1LL);
  EXPECT_EQ(t.to_csv_string(), "a,b\nx,1\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvTable t({"name"});
  t.new_row().add("volts, measured");
  t.new_row().add("say \"hi\"");
  const std::string out = t.to_csv_string();
  EXPECT_NE(out.find("\"volts, measured\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, DoublePrecisionControl) {
  CsvTable t({"v"});
  t.new_row().add(0.93604567, 4);
  EXPECT_EQ(t.to_csv_string(), "v\n0.936\n");
}

TEST(Csv, RejectsTooManyCells) {
  CsvTable t({"only"});
  t.new_row().add("one");
  EXPECT_THROW(t.add("two"), std::logic_error);
}

TEST(Csv, RejectsAddBeforeRow) {
  CsvTable t({"c"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Csv, PrettyAlignsColumns) {
  CsvTable t({"id", "value"});
  t.new_row().add("a").add("1");
  std::ostringstream os;
  t.write_pretty(os);
  EXPECT_NE(os.str().find("id"), std::string::npos);
  EXPECT_NE(os.str().find("value"), std::string::npos);
}

TEST(Logging, SinkReceivesEnabledMessages) {
  Logger logger;
  std::string captured;
  logger.set_sink([&captured](LogLevel, std::string_view msg) {
    captured.assign(msg);
  });
  logger.set_level(LogLevel::kInfo);
  logger.log(LogLevel::kInfo, "hello");
  EXPECT_EQ(captured, "hello");
}

TEST(Logging, LevelFiltersBelowThreshold) {
  Logger logger;
  int calls = 0;
  logger.set_sink([&calls](LogLevel, std::string_view) { ++calls; });
  logger.set_level(LogLevel::kWarn);
  logger.log(LogLevel::kDebug, "dropped");
  logger.log(LogLevel::kInfo, "dropped");
  logger.log(LogLevel::kError, "kept");
  EXPECT_EQ(calls, 1);
}

TEST(Logging, CountsWarningsAndErrors) {
  Logger logger;
  logger.set_sink([](LogLevel, std::string_view) {});
  logger.set_level(LogLevel::kTrace);
  logger.log(LogLevel::kInfo, "fine");
  logger.log(LogLevel::kWarn, "warn");
  logger.log(LogLevel::kError, "err");
  EXPECT_EQ(logger.warning_count(), 2);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
}

}  // namespace
}  // namespace psnt::util
