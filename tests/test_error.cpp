#include "util/error.h"

#include <gtest/gtest.h>

namespace psnt::util {
namespace {

TEST(Error, CodeNames) {
  EXPECT_EQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(to_string(ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(to_string(ErrorCode::kInternal), "internal");
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  const Error e = invalid_argument("bad cap");
  EXPECT_EQ(e.to_string(), "invalid_argument: bad cap");
}

TEST(Expected, HoldsValue) {
  Expected<int> ok{42};
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> bad{out_of_range("code 9 does not exist")};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW((void)bad.value(), std::runtime_error);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> ok{std::string("payload")};
  const std::string s = std::move(ok).value();
  EXPECT_EQ(s, "payload");
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_NO_THROW(PSNT_CHECK(1 + 1 == 2, "math works"));
  EXPECT_THROW(PSNT_CHECK(false, "must fail"), std::logic_error);
}

TEST(Check, MessageNamesTheCondition) {
  try {
    PSNT_CHECK(2 < 1, "ordering");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ordering"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
  }
}

}  // namespace
}  // namespace psnt::util
