// Fleet conformance and failure-model tests (DESIGN.md §15).
//
// The conformance requirement: a multi-process fleet run is bit-identical in
// decoded words to the same sites captured in-process — at 1, 2 and 8
// aggregator threads, and still when a worker is SIGKILLed mid-run and its
// assignment re-run on a pre-forked spare. With no spare left, the loss is
// counted and mirrored into the serving layer's degradation status.
#include <gtest/gtest.h>

#include <memory>

#include "fleet/fleet.h"
#include "fleet/partition.h"
#include "serve/store.h"

namespace psnt::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig config;
  config.sites = 8;
  config.samples_per_site = 24;
  config.seed = 77;
  config.workers = 3;
  config.spares = 0;
  config.span_samples = 7;  // force multi-span streams + a partial tail span
  return config;
}

// --- partition policy ------------------------------------------------------

TEST(Partition, BlockedSpreadsRemainderOverLeadingWorkers) {
  PartitionPolicy policy;  // kBlocked default
  const auto parts = policy.shard(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(parts[1], (std::vector<std::uint32_t>{4, 5, 6}));
  EXPECT_EQ(parts[2], (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(Partition, RoundRobinInterleaves) {
  PartitionPolicy policy{PartitionStrategy::kRoundRobin};
  const auto parts = policy.shard(7, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<std::uint32_t>{0, 3, 6}));
  EXPECT_EQ(parts[1], (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(parts[2], (std::vector<std::uint32_t>{2, 5}));
}

TEST(Partition, EverySiteAssignedExactlyOnce) {
  for (const auto strategy :
       {PartitionStrategy::kBlocked, PartitionStrategy::kRoundRobin}) {
    PartitionPolicy policy{strategy};
    const auto parts = policy.shard(23, 5);
    std::vector<int> seen(23, 0);
    for (const auto& part : parts) {
      for (const auto site : part) seen[site]++;
    }
    for (std::size_t s = 0; s < seen.size(); ++s) {
      EXPECT_EQ(seen[s], 1) << "site " << s << " under "
                            << to_string(strategy);
    }
  }
}

// --- conformance -----------------------------------------------------------

TEST(Fleet, MatchesInProcessReferenceAcrossAggregatorThreads) {
  const auto reference = FleetCoordinator::run_in_process(small_config());
  ASSERT_EQ(reference.count_valid(),
            small_config().sites * small_config().samples_per_site);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    auto config = small_config();
    config.aggregator_threads = threads;
    FleetCoordinator fleet(config);
    const auto result = fleet.run();

    EXPECT_TRUE(result.completed) << threads << " aggregator threads";
    EXPECT_EQ(result.samples_lost, 0u);
    EXPECT_EQ(result.frame_errors, 0u);
    EXPECT_EQ(result.samples_valid, result.samples_expected);
    EXPECT_TRUE(result.matrix.identical_to(reference))
        << "fleet diverged from in-process at " << threads
        << " aggregator threads";
    EXPECT_GT(result.spans, 0u);
    EXPECT_GT(result.samples_per_second, 0.0);
    EXPECT_FALSE(result.span_latency_ns.empty());
  }
}

TEST(Fleet, RoundRobinPartitionIsStillBitIdentical) {
  auto config = small_config();
  config.partition.strategy = PartitionStrategy::kRoundRobin;
  const auto reference = FleetCoordinator::run_in_process(config);
  FleetCoordinator fleet(config);
  const auto result = fleet.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.matrix.identical_to(reference));
}

// --- failure model ---------------------------------------------------------

TEST(Fleet, KilledWorkerIsRestartedOnASpareBitIdentically) {
  auto config = small_config();
  // Big enough that worker 1 cannot finish its assignment before the kill
  // lands (a 600-sample run completed in under 5 ms on a fast box and the
  // kill found the worker already gone).
  config.samples_per_site = 20000;
  config.span_samples = 64;
  config.spares = 1;
  config.aggregator_threads = 2;

  FleetCoordinator fleet(config);
  fleet.schedule_kill(1, /*after_ms=*/2);
  const auto result = fleet.run();

  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.workers_killed, 1u)
      << "kill landed after the assignment finished; grow samples_per_site";
  // Whether the kill landed before or after the worker's kDone, the matrix
  // must be complete and bit-identical: a spare re-runs the deterministic
  // assignment and overwrites any already-delivered slots with equal values.
  EXPECT_EQ(result.assignments_lost, 0u);
  EXPECT_EQ(result.samples_lost, 0u);
  EXPECT_EQ(result.frame_errors, 0u);
  EXPECT_TRUE(
      result.matrix.identical_to(FleetCoordinator::run_in_process(config)));
}

TEST(Fleet, KillWithoutSpareCountsLossAndDegradation) {
  auto config = small_config();
  // Big enough that worker 0 cannot outrun a kill scheduled a few ms in.
  config.samples_per_site = 20000;
  config.span_samples = 64;
  config.spares = 0;
  config.store = std::make_shared<serve::TelemetryStore>([&] {
    serve::StoreConfig sc;
    sc.site_count = config.sites;
    sc.shards = 2;
    return sc;
  }());

  FleetCoordinator fleet(config);
  fleet.schedule_kill(0, /*after_ms=*/2);
  const auto result = fleet.run();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.workers_killed, 1u);
  EXPECT_EQ(result.workers_restarted, 0u);
  ASSERT_GT(result.samples_lost, 0u) << "kill landed after the assignment "
                                        "finished; grow samples_per_site";
  EXPECT_EQ(result.assignments_lost, 1u);
  EXPECT_EQ(result.samples_valid + result.samples_lost,
            result.samples_expected);

  // Surviving workers' samples are still bit-identical to the reference.
  const auto reference = FleetCoordinator::run_in_process(config);
  for (std::uint32_t site = 0; site < config.sites; ++site) {
    for (std::uint32_t k = 0; k < config.samples_per_site; ++k) {
      const std::size_t i = result.matrix.index(site, k);
      if (!result.matrix.valid[i]) continue;
      EXPECT_EQ(result.matrix.words[i], reference.words[i])
          << "site " << site << " sample " << k;
    }
  }

  // The serving layer saw the loss (degradation mirror) and the deliveries.
  const auto degradation = result.samples_lost;
  EXPECT_EQ(config.store->degradation().samples_lost, degradation);
  EXPECT_EQ(config.store->degradation().sites_quarantined, 1u);
  EXPECT_EQ(config.store->total_ingested(), result.samples_valid);
}

// --- matrix predicate ------------------------------------------------------

TEST(Fleet, IdenticalToComparesWordsAndValidity) {
  SampleMatrix a(2, 2);
  SampleMatrix b(2, 2);
  EXPECT_TRUE(a.identical_to(b));

  a.valid[a.index(1, 0)] = 1;
  a.words[a.index(1, 0)] = core::ThermoWord{0x3, 4};
  a.code_values[a.index(1, 0)] = 3;
  EXPECT_FALSE(a.identical_to(b));

  b.valid[b.index(1, 0)] = 1;
  b.words[b.index(1, 0)] = core::ThermoWord{0x3, 4};
  b.code_values[b.index(1, 0)] = 3;
  EXPECT_TRUE(a.identical_to(b));

  b.words[b.index(1, 0)] = core::ThermoWord{0x1, 4};
  EXPECT_FALSE(a.identical_to(b));
}

}  // namespace
}  // namespace psnt::fleet
