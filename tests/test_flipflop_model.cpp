#include "analog/flipflop_model.h"

#include <gtest/gtest.h>

namespace psnt::analog {
namespace {

using namespace psnt::literals;

FlipFlopTimingModel typical() { return FlipFlopTimingModel{FlipFlopParams{}}; }

TEST(FlipFlop, CleanCaptureWellBeforeDeadline) {
  const auto ff = typical();
  // Data at 10 ps, clock at 200 ps: margin = 200-35-10 = 155 ps >> window.
  const auto out = ff.sample(10.0_ps, 200.0_ps, true, false);
  EXPECT_TRUE(out.captured_value);
  EXPECT_EQ(out.region, SampleRegion::kClean);
  EXPECT_DOUBLE_EQ(out.clk_to_q.value(), ff.params().t_clk_to_q.value());
  EXPECT_DOUBLE_EQ(out.setup_margin.value(), 155.0);
}

TEST(FlipFlop, ViolationRetainsOldValue) {
  const auto ff = typical();
  // Data arrives after the setup deadline.
  const auto out = ff.sample(180.0_ps, 200.0_ps, true, false);
  EXPECT_FALSE(out.captured_value);  // kept the old 0
  EXPECT_EQ(out.region, SampleRegion::kViolated);
  EXPECT_LT(out.setup_margin.value(), 0.0);
}

TEST(FlipFlop, ViolationWithOldOnePreservesOne) {
  const auto ff = typical();
  const auto out = ff.sample(180.0_ps, 200.0_ps, false, true);
  EXPECT_TRUE(out.captured_value);
  EXPECT_EQ(out.region, SampleRegion::kViolated);
}

TEST(FlipFlop, MetastableCapturesButSlowly) {
  const auto ff = typical();
  // Margin of 5 ps: inside the 10 ps window.
  const auto out = ff.sample(160.0_ps, 200.0_ps, true, false);
  EXPECT_TRUE(out.captured_value);
  EXPECT_EQ(out.region, SampleRegion::kMetastable);
  EXPECT_GT(out.clk_to_q.value(), ff.params().t_clk_to_q.value());
}

TEST(FlipFlop, ClkToQGrowsNonlinearlyTowardTheBoundary) {
  // The Fig. 2 behaviour: equal margin steps produce accelerating clk-to-q.
  const auto ff = typical();
  const auto at_margin = [&](double m) {
    return ff.sample(Picoseconds{200.0 - 35.0 - m}, 200.0_ps, true, false)
        .clk_to_q.value();
  };
  const double d8 = at_margin(8.0);
  const double d6 = at_margin(6.0);
  const double d4 = at_margin(4.0);
  const double d2 = at_margin(2.0);
  EXPECT_LT(d8, d6);
  EXPECT_LT(d6, d4);
  EXPECT_LT(d4, d2);
  // Accelerating: each 2 ps step hurts more than the previous one.
  EXPECT_GT(d4 - d6, d6 - d8);
  EXPECT_GT(d2 - d4, d4 - d6);
}

TEST(FlipFlop, ResolutionIsCapped) {
  FlipFlopParams p;
  p.max_resolution = Picoseconds{150.0};  // tight cap to make it reachable
  const FlipFlopTimingModel ff{p};
  // Margin of 1e-6 ps: tau*ln(w/m) ≈ 129 ps, so t0+extra exceeds the cap.
  const auto out =
      ff.sample(Picoseconds{200.0 - 35.0 - 1e-6}, 200.0_ps, true, false);
  EXPECT_DOUBLE_EQ(out.clk_to_q.value(), 150.0);
}

TEST(FlipFlop, ExactDeadlineCountsAsViolation) {
  const auto ff = typical();
  const auto out = ff.sample(165.0_ps, 200.0_ps, true, false);  // margin 0
  EXPECT_EQ(out.region, SampleRegion::kViolated);
}

TEST(FlipFlop, SetupMarginHelperMatchesSample) {
  const auto ff = typical();
  EXPECT_DOUBLE_EQ(ff.setup_margin(100.0_ps, 200.0_ps).value(), 65.0);
}

TEST(FlipFlop, DeepMetaResolverTakesOver) {
  auto ff = typical();
  int calls = 0;
  ff.set_deep_meta_resolver(
      [&calls](Picoseconds, bool, bool) {
        ++calls;
        return true;
      },
      2.0_ps);
  // Margin +1 ps: inside the deep band.
  const auto out =
      ff.sample(Picoseconds{200.0 - 35.0 - 1.0}, 200.0_ps, true, false);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(out.captured_value);
  EXPECT_EQ(out.region, SampleRegion::kMetastable);
  EXPECT_DOUBLE_EQ(out.clk_to_q.value(), ff.params().max_resolution.value());
  // Margin -1 ps: also inside the band (straddles zero).
  (void)ff.sample(Picoseconds{200.0 - 35.0 + 1.0}, 200.0_ps, true, false);
  EXPECT_EQ(calls, 2);
  // Far outside the band: resolver not consulted.
  (void)ff.sample(10.0_ps, 200.0_ps, true, false);
  EXPECT_EQ(calls, 2);
}

TEST(FlipFlop, TimingScaledCopy) {
  const auto ff = typical();
  const auto slow = ff.with_timing_scaled(1.1);
  EXPECT_NEAR(slow.params().t_setup.value(),
              ff.params().t_setup.value() * 1.1, 1e-12);
  EXPECT_NEAR(slow.params().t_clk_to_q.value(),
              ff.params().t_clk_to_q.value() * 1.1, 1e-12);
  EXPECT_THROW((void)ff.with_timing_scaled(-1.0), std::logic_error);
}

TEST(FlipFlop, RejectsUnphysicalParams) {
  FlipFlopParams p;
  p.tau = Picoseconds{-1.0};
  EXPECT_THROW(FlipFlopTimingModel{p}, std::logic_error);
  p = FlipFlopParams{};
  p.max_resolution = Picoseconds{1.0};  // below t_clk_to_q
  EXPECT_THROW(FlipFlopTimingModel{p}, std::logic_error);
}

TEST(FlipFlop, RegionNames) {
  EXPECT_STREQ(to_string(SampleRegion::kClean), "clean");
  EXPECT_STREQ(to_string(SampleRegion::kMetastable), "metastable");
  EXPECT_STREQ(to_string(SampleRegion::kViolated), "violated");
}

}  // namespace
}  // namespace psnt::analog
