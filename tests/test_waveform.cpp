#include "psn/waveform.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psnt::psn {
namespace {

using namespace psnt::literals;

TEST(Waveform, InterpolatesAndClamps) {
  Waveform w{0.0_ps, 100.0_ps, {1.0, 0.9, 1.1}};
  EXPECT_DOUBLE_EQ(w.value_at(0.0_ps), 1.0);
  EXPECT_DOUBLE_EQ(w.value_at(50.0_ps), 0.95);
  EXPECT_DOUBLE_EQ(w.value_at(150.0_ps), 1.0);
  EXPECT_DOUBLE_EQ(w.value_at(-50.0_ps), 1.0);
  EXPECT_DOUBLE_EQ(w.value_at(9999.0_ps), 1.1);
}

TEST(Waveform, BasicStats) {
  Waveform w{0.0_ps, 10.0_ps, {1.0, 0.8, 1.2, 1.0}};
  EXPECT_DOUBLE_EQ(w.min(), 0.8);
  EXPECT_DOUBLE_EQ(w.max(), 1.2);
  EXPECT_DOUBLE_EQ(w.mean(), 1.0);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(), 0.4);
  EXPECT_DOUBLE_EQ(w.time_of_min().value(), 10.0);
  EXPECT_NEAR(w.rms_ripple(), std::sqrt(0.08 / 4.0), 1e-12);
}

TEST(Waveform, DurationAndEnd) {
  Waveform w{100.0_ps, 10.0_ps, {0, 0, 0, 0, 0}};
  EXPECT_DOUBLE_EQ(w.duration().value(), 40.0);
  EXPECT_DOUBLE_EQ(w.end().value(), 140.0);
}

TEST(Waveform, MapAndAdd) {
  Waveform a{0.0_ps, 10.0_ps, {1.0, 2.0}};
  Waveform b{0.0_ps, 10.0_ps, {0.5, 0.5}};
  const Waveform sum = a.add(b);
  EXPECT_DOUBLE_EQ(sum.samples()[0], 1.5);
  EXPECT_DOUBLE_EQ(sum.samples()[1], 2.5);
  const Waveform scaled = a.map([](double v) { return v * 10.0; });
  EXPECT_DOUBLE_EQ(scaled.samples()[1], 20.0);
  Waveform misaligned{5.0_ps, 10.0_ps, {0.0, 0.0}};
  EXPECT_THROW((void)a.add(misaligned), std::logic_error);
}

TEST(Waveform, ConstantFactory) {
  const Waveform w = Waveform::constant(0.0_ps, 10.0_ps, 100, 1.0);
  EXPECT_EQ(w.size(), 100u);
  EXPECT_DOUBLE_EQ(w.peak_to_peak(), 0.0);
  EXPECT_DOUBLE_EQ(w.rms_ripple(), 0.0);
}

TEST(Waveform, SineHasExpectedAmplitudeAndPeriod) {
  // 0.1 GHz → 10 ns period; sample for 2 periods at 10 ps.
  const Waveform w = Waveform::sine(0.0_ps, 10.0_ps, 2001, 1.0, 0.05, 0.1);
  EXPECT_NEAR(w.max(), 1.05, 1e-4);
  EXPECT_NEAR(w.min(), 0.95, 1e-4);
  EXPECT_NEAR(w.mean(), 1.0, 1e-3);
  // Quarter period (2.5 ns) hits the crest.
  EXPECT_NEAR(w.value_at(2500.0_ps), 1.05, 1e-6);
}

TEST(Waveform, DampedDroopShape) {
  // 0.05 GHz (20 ns ring), 5 ns decay, event at 10 ns, 80 mV deep.
  const Waveform w = Waveform::damped_droop(0.0_ps, 10.0_ps, 6000, 1.0, 0.08,
                                            0.05, 5000.0_ps, 10000.0_ps);
  // Flat before the event.
  EXPECT_DOUBLE_EQ(w.value_at(5000.0_ps), 1.0);
  // The first trough is `depth` below nominal by construction; the decay
  // envelope pulls it earlier than the quarter period: at
  // t_event + atan(w*tau)/w ≈ 10 + 3.2 ns.
  EXPECT_NEAR(w.min(), 0.92, 2e-3);
  EXPECT_NEAR(w.time_of_min().value(), 13200.0, 300.0);
  // Rings back above nominal, then decays toward it.
  EXPECT_GT(w.max(), 1.0);
  EXPECT_NEAR(w.samples().back(), 1.0, 0.01);
}

TEST(Waveform, FromFunction) {
  const Waveform w = Waveform::from_function(
      0.0_ps, 1.0_ps, 11, [](Picoseconds t) { return t.value() * 2.0; });
  EXPECT_DOUBLE_EQ(w.samples()[5], 10.0);
}

TEST(Waveform, ToRailRoundTrips) {
  const Waveform w = Waveform::sine(0.0_ps, 10.0_ps, 500, 1.0, 0.05, 0.2);
  const analog::SampledRail rail = w.to_rail();
  for (double t = 0.0; t < 4000.0; t += 333.0) {
    EXPECT_NEAR(rail.at(Picoseconds{t}).value(), w.value_at(Picoseconds{t}),
                1e-12);
  }
}

TEST(Waveform, RejectsBadConstruction) {
  EXPECT_THROW(Waveform(0.0_ps, 0.0_ps, {1.0}), std::logic_error);
  EXPECT_THROW(Waveform(0.0_ps, 1.0_ps, {}), std::logic_error);
}

}  // namespace
}  // namespace psnt::psn
