#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "grid/thread_pool.h"

namespace psnt::grid {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.completed(), 100u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleAllowsFurtherSubmissions) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobsUnderLoad) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool{2};
    // Many more jobs than threads, each slow enough that a deep queue exists
    // when shutdown begins: graceful shutdown must still run them all.
    for (int i = 0; i < 64; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, DestructorJoinsWithoutExplicitShutdown) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool{3};
    for (int i = 0; i < 32; ++i) {
      pool.submit([&executed] { executed.fetch_add(1); });
    }
    // No wait_idle/shutdown: the destructor must drain and join.
  }
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool{1};
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPool, ExceptionIsCapturedNotFatal) {
  ThreadPool pool{2};
  std::atomic<int> survived{0};
  pool.submit([] { throw std::runtime_error("site 7 exploded"); });
  pool.submit([&] { survived.fetch_add(1); });
  pool.wait_idle();
  // The worker that caught the throw keeps serving jobs.
  EXPECT_EQ(survived.load(), 1);
  auto errors = pool.take_exceptions();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_THROW(std::rethrow_exception(errors[0]), std::runtime_error);
  // take_exceptions transfers ownership.
  EXPECT_TRUE(pool.take_exceptions().empty());
}

TEST(ThreadPool, RethrowFirstExceptionPreservesOrderAndMessage) {
  ThreadPool pool{1};  // single worker serialises the two throws
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  pool.wait_idle();
  try {
    pool.rethrow_first_exception();
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_THROW(pool.rethrow_first_exception(), std::logic_error);
  // Nothing left: a third call is a no-op.
  pool.rethrow_first_exception();
}

TEST(ThreadPool, ManyJobsStress) {
  ThreadPool pool{4};
  std::atomic<std::uint64_t> sum{0};
  constexpr int kJobs = 5000;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(pool.completed(), static_cast<std::size_t>(kJobs));
}

}  // namespace
}  // namespace psnt::grid
