#include "analog/mtbf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psnt::analog {
namespace {

using namespace psnt::literals;

FlipFlopTimingModel ff() { return FlipFlopTimingModel{}; }

TEST(Mtbf, ProbabilityMatchesClosedForm) {
  MtbfParams p;
  p.resolve_time = 20.0_ps;
  p.edge_jitter_window = 50.0_ps;
  // (w/T) e^{-t/tau} = (10/50) e^{-20/8}
  const double expected = 0.2 * std::exp(-20.0 / 8.0);
  EXPECT_NEAR(unresolved_probability(ff(), p), expected, 1e-12);
}

TEST(Mtbf, WindowWiderThanJitterClamps) {
  MtbfParams p;
  p.resolve_time = 0.0_ps;
  p.edge_jitter_window = 5.0_ps;  // narrower than the 10 ps aperture
  EXPECT_DOUBLE_EQ(unresolved_probability(ff(), p), 1.0);
}

TEST(Mtbf, ProbabilityDecaysExponentiallyWithResolveTime) {
  MtbfParams p;
  p.edge_jitter_window = 50.0_ps;
  p.resolve_time = 8.0_ps;
  const double p1 = unresolved_probability(ff(), p);
  p.resolve_time = 16.0_ps;
  const double p2 = unresolved_probability(ff(), p);
  EXPECT_NEAR(p1 / p2, std::exp(1.0), 1e-9);  // one extra tau
}

TEST(Mtbf, MtbfScalesInverselyWithRate) {
  MtbfParams p;
  p.resolve_time = 40.0_ps;
  p.measure_rate_hz = 1e6;
  const double slow = mtbf_seconds(ff(), p);
  p.measure_rate_hz = 2e6;
  EXPECT_NEAR(mtbf_seconds(ff(), p), slow / 2.0, slow * 1e-9);
}

TEST(Mtbf, GenerousResolveTimeIsEffectivelyInfinite) {
  MtbfParams p;
  p.resolve_time = Picoseconds{8000.0};  // 1000 tau
  EXPECT_GE(mtbf_seconds(ff(), p), 1e30);
}

TEST(Mtbf, ResolveTimeForTargetRoundTrips) {
  MtbfParams p;
  p.measure_rate_hz = 1e6;
  p.edge_jitter_window = 50.0_ps;
  const double target = 3.15e7;  // one year
  const Picoseconds t = resolve_time_for_mtbf(ff(), p, target);
  EXPECT_GT(t.value(), 0.0);
  p.resolve_time = t;
  EXPECT_NEAR(mtbf_seconds(ff(), p), target, target * 1e-6);
}

TEST(Mtbf, TrivialTargetNeedsNoResolveTime) {
  MtbfParams p;
  p.measure_rate_hz = 1.0;
  p.edge_jitter_window = 1000.0_ps;
  EXPECT_DOUBLE_EQ(resolve_time_for_mtbf(ff(), p, 1e-6).value(), 0.0);
}

TEST(Mtbf, MonteCarloAgreesWithClosedForm) {
  MtbfParams p;
  p.resolve_time = 12.0_ps;
  p.edge_jitter_window = 50.0_ps;
  const double analytic = unresolved_probability(ff(), p);
  const double empirical =
      monte_carlo_unresolved_fraction(ff(), p, 400000, 42);
  EXPECT_NEAR(empirical, analytic, 0.15 * analytic + 5e-4);
}

TEST(Mtbf, MonteCarloDeterministicPerSeed) {
  MtbfParams p;
  p.resolve_time = 10.0_ps;
  EXPECT_DOUBLE_EQ(monte_carlo_unresolved_fraction(ff(), p, 10000, 7),
                   monte_carlo_unresolved_fraction(ff(), p, 10000, 7));
}

TEST(Mtbf, ValidatesInputs) {
  MtbfParams p;
  p.edge_jitter_window = Picoseconds{0.0};
  EXPECT_THROW((void)unresolved_probability(ff(), p), std::logic_error);
  MtbfParams q;
  q.measure_rate_hz = 0.0;
  EXPECT_THROW((void)mtbf_seconds(ff(), q), std::logic_error);
  EXPECT_THROW((void)resolve_time_for_mtbf(ff(), MtbfParams{}, -1.0),
               std::logic_error);
  EXPECT_THROW((void)monte_carlo_unresolved_fraction(ff(), MtbfParams{}, 0, 1),
               std::logic_error);
}

}  // namespace
}  // namespace psnt::analog
