// Conformance tests for the streaming raw-word pipeline: the grid's
// drain-pass ENC + shared-ladder decode must publish the same words and bins
// as the legacy per-site decode, at every thread count, for every backend
// and code policy. This is the ISSUE-5 acceptance gate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "calib/fit.h"
#include "fault/fault_injector.h"
#include "grid/scan_grid.h"

namespace psnt::grid {
namespace {

using namespace psnt::literals;

ScanGridConfig base_config(std::size_t threads, DecodePath path) {
  ScanGridConfig config;
  config.threads = threads;
  config.samples_per_site = 6;
  config.start = Picoseconds{0.0};
  config.interval = Picoseconds{10000.0};
  config.code = core::DelayCode{3};
  config.seed = 7;
  config.decode_path = path;
  return config;
}

RailFactory test_rails(const scan::Floorplan& fp) {
  return ScanGrid::ir_gradient_rails(fp, Volt{1.01}, 0.05 / 5657.0,
                                     {0.0, 0.0}, /*sigma_volts=*/0.004);
}

void expect_runs_identical(const RunResult& streaming,
                           const RunResult& per_site,
                           std::size_t samples_per_site, const char* label) {
  ASSERT_EQ(streaming.sites.size(), per_site.sites.size());
  for (std::size_t i = 0; i < streaming.sites.size(); ++i) {
    const auto& a = streaming.sites[i];
    const auto& b = per_site.sites[i];
    EXPECT_EQ(a.final_code, b.final_code) << label << " site " << i;
    EXPECT_EQ(a.code_steps, b.code_steps) << label << " site " << i;
    for (std::size_t k = 0; k < samples_per_site; ++k) {
      ASSERT_TRUE(a.valid[k] && b.valid[k]) << label << " site " << i;
      const auto& sa = a.samples[k];
      const auto& sb = b.samples[k];
      EXPECT_EQ(sa.word, sb.word)
          << label << " site " << i << " sample " << k << ": word diverged";
      EXPECT_EQ(sa.code, sb.code) << label << " site " << i << " sample " << k;
      EXPECT_EQ(sa.timestamp.value(), sb.timestamp.value())
          << label << " site " << i << " sample " << k;
      // Bins must agree to the exact double, not just the printed string:
      // the drain ladder mirrors the kernel ladder operand-for-operand.
      ASSERT_EQ(sa.bin.lo.has_value(), sb.bin.lo.has_value());
      ASSERT_EQ(sa.bin.hi.has_value(), sb.bin.hi.has_value());
      if (sa.bin.lo) {
        EXPECT_EQ(sa.bin.lo->value(), sb.bin.lo->value());
      }
      if (sa.bin.hi) {
        EXPECT_EQ(sa.bin.hi->value(), sb.bin.hi->value());
      }
    }
  }
}

TEST(StreamingGrid, BitIdenticalToPerSiteDecodeAt1_2_8Threads) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScanGrid streaming{fp, base_config(threads, DecodePath::kStreaming),
                       test_rails(fp)};
    ScanGrid per_site{fp, base_config(threads, DecodePath::kPerSite),
                      test_rails(fp)};
    const auto a = streaming.run();
    const auto b = per_site.run();
    expect_runs_identical(a, b, 6, "behavioral");
    EXPECT_EQ(a.produced, b.produced) << "threads=" << threads;
  }
}

TEST(StreamingGrid, AutoRangeTrimsIdenticallyOnBothPaths) {
  // Auto-range feedback stays capture-side in streaming mode precisely so
  // the trim sequence (and therefore every word and code) matches the
  // legacy path sample-for-sample.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    auto streaming_config = base_config(threads, DecodePath::kStreaming);
    streaming_config.samples_per_site = 10;
    streaming_config.code_policy = CodePolicy::kAutoRange;
    auto per_site_config = streaming_config;
    per_site_config.decode_path = DecodePath::kPerSite;
    // 0.85 V sits outside code 011's window: the controller must walk.
    ScanGrid streaming{fp, streaming_config,
                       ScanGrid::constant_rails(Volt{0.85})};
    ScanGrid per_site{fp, per_site_config,
                      ScanGrid::constant_rails(Volt{0.85})};
    const auto a = streaming.run();
    const auto b = per_site.run();
    expect_runs_identical(a, b, 10, "auto-range");
    for (const auto& site : a.sites) EXPECT_GT(site.code_steps, 0u);
  }
}

TEST(StreamingGrid, StructuralSitesStreamRawWords) {
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto config = base_config(1, DecodePath::kStreaming);
  config.samples_per_site = 2;
  config.fidelity = SiteFidelity::kStructural;
  auto per_site_config = config;
  per_site_config.decode_path = DecodePath::kPerSite;
  ScanGrid streaming{fp, config, ScanGrid::constant_rails(1.0_V)};
  ScanGrid per_site{fp, per_site_config, ScanGrid::constant_rails(1.0_V)};
  const auto a = streaming.run();
  const auto b = per_site.run();
  expect_runs_identical(a, b, 2, "structural");
  // The netlist batch really took the raw path: drain-pass ENC saw every
  // word, and the sim telemetry still flowed.
  EXPECT_EQ(streaming.telemetry().counter("grid.enc.words").value(), 2u * 2u);
  EXPECT_GT(streaming.telemetry().counter("grid.sim_events").value(), 0u);
}

TEST(StreamingGrid, DrainPassEncTelemetry) {
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  ScanGrid streaming{fp, base_config(4, DecodePath::kStreaming),
                     test_rails(fp)};
  const auto result = streaming.run();
  auto& t = streaming.telemetry();
  // Every drained sample went through the drain-pass encoder exactly once.
  EXPECT_EQ(t.counter("grid.enc.words").value(), result.produced);
  EXPECT_LE(t.counter("grid.enc.underflows").value(),
            t.counter("grid.enc.words").value());
  EXPECT_LE(t.counter("grid.enc.overflows").value(),
            t.counter("grid.enc.words").value());

  // The legacy path never touches the streaming encoder.
  ScanGrid per_site{fp, base_config(4, DecodePath::kPerSite), test_rails(fp)};
  (void)per_site.run();
  EXPECT_EQ(per_site.telemetry().counter("grid.enc.words").value(), 0u);
}

TEST(StreamingGrid, ChaosPathForcesPerSiteDecode) {
  // Attaching an injector (even an all-zero-probability one) activates the
  // chaos loop, which must fall back to per-site decode: recovery decisions
  // consume decoded bins. The words still match a plain per-site run.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto chaos_config = base_config(2, DecodePath::kStreaming);
  chaos_config.injector =
      std::make_shared<fault::FaultInjector>(2026, fault::FaultStormConfig{});
  ScanGrid chaos{fp, chaos_config, test_rails(fp)};
  ScanGrid plain{fp, base_config(2, DecodePath::kPerSite), test_rails(fp)};
  const auto a = chaos.run();
  const auto b = plain.run();
  expect_runs_identical(a, b, 6, "chaos-fallback");
  EXPECT_EQ(chaos.telemetry().counter("grid.enc.words").value(), 0u);
}

TEST(StreamingGrid, BatchCaptureBitIdenticalToBothLegacyPipelines) {
  // The ISSUE-7 acceptance gate: the vectorized SoA batch capture
  // (batch_capture=true, the default) must publish the same words, bins and
  // codes as the PR-5 per-sample streaming pipeline AND the legacy per-site
  // decode, at every thread count.
  const auto fp = scan::Floorplan::grid(4000.0, 4000.0, 4, 4);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    auto batch_config = base_config(threads, DecodePath::kStreaming);
    ASSERT_TRUE(batch_config.batch_capture);
    auto legacy_config = batch_config;
    legacy_config.batch_capture = false;
    auto per_site_config = legacy_config;
    per_site_config.decode_path = DecodePath::kPerSite;
    ScanGrid batch{fp, batch_config, test_rails(fp)};
    ScanGrid legacy{fp, legacy_config, test_rails(fp)};
    ScanGrid per_site{fp, per_site_config, test_rails(fp)};
    const auto a = batch.run();
    const auto b = legacy.run();
    const auto c = per_site.run();
    expect_runs_identical(a, b, 6, "batch-vs-streaming");
    expect_runs_identical(a, c, 6, "batch-vs-per-site");
  }
}

TEST(StreamingGrid, ChaosGridUnaffectedByBatchCapture) {
  // An injector forces the chaos loop (per-sample measures, per-site
  // decode); the batch_capture knob must be a strict no-op there.
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto on_config = base_config(2, DecodePath::kStreaming);
  on_config.injector = std::make_shared<fault::FaultInjector>(
      414, fault::FaultStormConfig{});
  auto off_config = on_config;
  off_config.batch_capture = false;
  ScanGrid on{fp, on_config, test_rails(fp)};
  ScanGrid off{fp, off_config, test_rails(fp)};
  const auto a = on.run();
  const auto b = off.run();
  expect_runs_identical(a, b, 6, "chaos-batch-knob");
}

TEST(StreamingGrid, AutoRangeKeepsPerSampleCaptureUnderBatchConfig) {
  // Auto-ranging sites must never take the batch capture (the controller
  // needs every word before the next PREPARE), so batch_capture on/off are
  // bit-identical — and identical to the per-site auto-range reference.
  const auto fp = scan::Floorplan::grid(1000.0, 1000.0, 1, 2);
  auto on_config = base_config(2, DecodePath::kStreaming);
  on_config.samples_per_site = 10;
  on_config.code_policy = CodePolicy::kAutoRange;
  auto off_config = on_config;
  off_config.batch_capture = false;
  auto per_site_config = on_config;
  per_site_config.decode_path = DecodePath::kPerSite;
  ScanGrid on{fp, on_config, ScanGrid::constant_rails(Volt{0.85})};
  ScanGrid off{fp, off_config, ScanGrid::constant_rails(Volt{0.85})};
  ScanGrid per_site{fp, per_site_config, ScanGrid::constant_rails(Volt{0.85})};
  const auto a = on.run();
  const auto b = off.run();
  const auto c = per_site.run();
  expect_runs_identical(a, b, 10, "auto-range-batch-knob");
  expect_runs_identical(a, c, 10, "auto-range-vs-per-site");
  for (const auto& site : a.sites) EXPECT_GT(site.code_steps, 0u);
}

TEST(StreamingGrid, DropNewestStillAccountsForEverySample) {
  // Backpressure semantics are unchanged by the smaller ring payload.
  const auto fp = scan::Floorplan::grid(2000.0, 2000.0, 2, 2);
  auto config = base_config(2, DecodePath::kStreaming);
  config.backpressure = BackpressurePolicy::kDropNewest;
  config.ring_capacity = 2;
  ScanGrid grid{fp, config, test_rails(fp)};
  const auto result = grid.run();
  std::uint64_t valid = 0;
  for (const auto& site : result.sites) {
    for (bool v : site.valid) valid += v ? 1 : 0;
  }
  EXPECT_EQ(result.produced, 4u * 6u);
  EXPECT_EQ(valid + result.dropped, result.produced);
}

}  // namespace
}  // namespace psnt::grid
