#include "sta/verilog_writer.h"

#include <gtest/gtest.h>

#include "sta/control_netlist.h"

namespace psnt::sta {
namespace {

std::string control_verilog() {
  const auto netlist =
      build_control_netlist(analog::default_90nm_library());
  return verilog_string(netlist);
}

TEST(VerilogWriter, ModuleHeaderAndClockPort) {
  const std::string v = control_verilog();
  EXPECT_NE(v.find("module psnt_cntr (clk);"), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, EveryGateInstanceEmitted) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  const std::string v = verilog_string(netlist);
  for (const auto& g : netlist.gates) {
    EXPECT_NE(v.find(g.cell), std::string::npos) << g.cell;
    EXPECT_NE(v.find("\\" + g.name + " "), std::string::npos) << g.name;
  }
  // Instance count matches the builder's bookkeeping.
  std::size_t instances = 0;
  std::size_t pos = 0;
  while ((pos = v.find("  XOR2_X1 ", pos)) != std::string::npos) {
    ++instances;
    pos += 1;
  }
  std::size_t expected_xor = 0;
  for (const auto& g : netlist.gates) {
    if (g.cell == "XOR2_X1") ++expected_xor;
  }
  EXPECT_EQ(instances, expected_xor);
}

TEST(VerilogWriter, RegistersEmittedWithClock) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  const std::string v = verilog_string(netlist);
  std::size_t dffs = 0;
  std::size_t pos = 0;
  while ((pos = v.find("  DFF_X1 ", pos)) != std::string::npos) {
    ++dffs;
    pos += 1;
  }
  EXPECT_EQ(dffs, netlist.register_count);
  EXPECT_NE(v.find(".CP(clk)"), std::string::npos);
}

TEST(VerilogWriter, DottedNamesAreEscaped) {
  const std::string v = control_verilog();
  // Dotted hierarchical names must appear as escaped identifiers.
  EXPECT_NE(v.find("\\enc.fa1.sum "), std::string::npos);
  EXPECT_NE(v.find("\\cmp.gt "), std::string::npos);
  // No unescaped dotted identifier fragments like "(enc.fa1".
  EXPECT_EQ(v.find("(enc.fa1"), std::string::npos);
}

TEST(VerilogWriter, MuxSelectUsesSPin) {
  const std::string v = control_verilog();
  const auto mux_pos = v.find("MUX2_X1");
  ASSERT_NE(mux_pos, std::string::npos);
  const auto line_end = v.find('\n', mux_pos);
  const std::string line = v.substr(mux_pos, line_end - mux_pos);
  EXPECT_NE(line.find(".S("), std::string::npos) << line;
}

TEST(VerilogWriter, CustomModuleName) {
  const auto netlist = build_control_netlist(analog::default_90nm_library());
  VerilogOptions options;
  options.module_name = "my_cntr";
  EXPECT_NE(verilog_string(netlist, options).find("module my_cntr"),
            std::string::npos);
}

TEST(VerilogWriter, RejectsEmptyNetlist) {
  ControlNetlist empty;
  std::ostringstream os;
  EXPECT_THROW(write_verilog(os, empty), std::logic_error);
}

TEST(VerilogWriter, BalancedParens) {
  const std::string v = control_verilog();
  long depth = 0;
  for (char c : v) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace psnt::sta
